"""Compact binary wire codec with adaptive per-frame compression.

Implements the same ``encode``/``decode`` contract as
:class:`~repro.net.codec.JsonCodec` against the same type registry, but
trades the ASCII JSON format for a length-friendly binary one:

- **varint framing** — collection sizes, string lengths, and integers
  are LEB128 varints (zigzag for signed values), so small numbers cost
  one byte instead of their decimal spelling;
- **per-frame string table** — every string (dict keys, codec tags,
  addresses, cell keys, values) is emitted once as a definition and
  referenced by index afterwards, so the key repetition that dominates
  JSON image payloads collapses to two-byte references;
- **struct-packed scalars** — floats travel as 8-byte IEEE doubles
  (non-finite values included), ints as varints of arbitrary precision;
- **fast paths for the hot registered types** — ``ObjectImage`` (cell
  key, version, and value fused into one record, so keys are not
  repeated between the cells dict and the version vector),
  ``DeltaImage``, ``VersionVector``, and ``PropertySet`` are walked
  directly off their attributes with no intermediate jsonable tree.

Adaptive compression rides on top: when ``compress_level`` is set,
frames at least ``compress_min_bytes`` long are zlib-compressed, and
the compressed form is kept only when it is actually smaller.  The
decision is recorded per frame on the attached
:class:`~repro.net.stats.MessageStats` (``frames_compressed`` /
``frames_stored`` / ``bytes_saved_compression``).

Frame layout::

    byte 0   magic: 0xF1 raw binary | 0xF2 zlib-compressed body
    body     msg_type, src, dst, msg_id, reply_to, payload — six
             values in the generic encoding below

Value encoding (one tag byte, then data)::

    0x00 null    0x01 true    0x02 false
    0x03 int     zigzag varint (arbitrary precision)
    0x04 float   8-byte big-endian IEEE double
    0x05 strdef  varint byte length + UTF-8 (appends to string table)
    0x06 strref  varint index into the frame's string table
    0x07 list    varint count + values          (tuples decode as lists)
    0x08 dict    varint count + (string key, value) pairs
    0x09 tagged  tag string + jsonable data     (generic registered type)
    0x0A image   ObjectImage fast path
    0x0B vvec    VersionVector fast path
    0x0C pset    PropertySet fast path
    0x0D delta   DeltaImage fast path

Decoded results are equal to what :class:`JsonCodec` decodes from the
same message (the cross-codec property tests assert exactly that), with
one deliberate improvement: this format needs no reserved-key escaping,
so payload dicts containing ``"__type__"`` are stored structurally.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Callable, Dict, List, Optional

from repro.errors import CodecError
from repro.net import codec as codec_mod
from repro.net.codec import JsonCodec
from repro.net.message import Message

MAGIC_RAW = 0xF1
MAGIC_ZLIB = 0xF2

_T_NULL = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_SDEF = 0x05
_T_SREF = 0x06
_T_LIST = 0x07
_T_DICT = 0x08
_T_TAGGED = 0x09
_T_IMAGE = 0x0A
_T_VVEC = 0x0B
_T_PSET = 0x0C
_T_DELTA = 0x0D

_DOUBLE = struct.Struct(">d")

# Registered tags the codec encodes/decodes structurally.  Looked up by
# tag string so net/ stays import-independent of core/ (the classes
# register themselves at import time; a frame can only contain them if
# that registration already ran).
_IMAGE_TAG = "flecc.object_image"
_VVEC_TAG = "flecc.version_vector"
_PSET_TAG = "flecc.property_set"
_DELTA_TAG = "flecc.delta_image"


def _write_uvarint(out: bytearray, n: int) -> None:
    while n > 0x7F:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _zigzag(n: int) -> int:
    return (n << 1) if n >= 0 else ((-n) << 1) - 1


def _unzigzag(z: int) -> int:
    return (z >> 1) if not (z & 1) else -((z + 1) >> 1)


class _Reader:
    """Cursor over one decoded frame body + its growing string table."""

    __slots__ = ("buf", "pos", "strings")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0
        self.strings: List[str] = []

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise CodecError("truncated binary frame")
        chunk = self.buf[self.pos : end]
        self.pos = end
        return chunk

    def byte(self) -> int:
        pos = self.pos
        if pos >= len(self.buf):
            raise CodecError("truncated binary frame")
        self.pos = pos + 1
        return self.buf[pos]

    def uvarint(self) -> int:
        shift = 0
        result = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
            if shift > 10_000:  # corrupt frame guard
                raise CodecError("runaway varint in binary frame")


class BinaryCodec:
    """Compact binary codec, wire-compatible payload-wise with JsonCodec.

    ``compress_level``: zlib level 1-9 enables adaptive per-frame
    compression (``None``/0 disables it).  ``compress_min_bytes``:
    frames shorter than this are stored raw without sampling.  ``stats``
    (attached by the owning transport) receives the per-frame
    compression decisions.
    """

    stats: Optional[Any] = None

    def __init__(
        self,
        compress_level: Optional[int] = None,
        compress_min_bytes: int = 200,
    ) -> None:
        if compress_level is not None and not 0 <= compress_level <= 9:
            raise CodecError(f"compress_level must be 0-9: {compress_level}")
        self.compress_level = compress_level or None
        self.compress_min_bytes = compress_min_bytes
        # Fallback for mixed links: a JSON frame handed to this codec
        # (e.g. a pre-negotiation peer) still decodes.
        self._json = JsonCodec()

    # -- encoding --------------------------------------------------------
    def encode(self, msg: Message) -> bytes:
        try:
            body = bytearray()
            strings: Dict[str, int] = {}
            enc = self._encode_value
            enc(msg.msg_type, body, strings)
            enc(msg.src, body, strings)
            enc(msg.dst, body, strings)
            enc(msg.msg_id, body, strings)
            enc(msg.reply_to, body, strings)
            enc(msg.payload, body, strings)
        except CodecError:
            raise
        except (TypeError, ValueError, struct.error) as exc:
            raise CodecError(f"cannot encode {msg}: {exc}") from exc
        return self._finish_frame(body)

    def _finish_frame(self, body: bytearray) -> bytes:
        """Apply the adaptive compression decision and prepend the magic."""
        level = self.compress_level
        stats = self.stats
        if level:
            size = len(body)
            if size >= self.compress_min_bytes:
                packed = zlib.compress(bytes(body), level)
                if len(packed) < size:
                    if stats is not None:
                        stats.record_compression(size - len(packed))
                    return bytes((MAGIC_ZLIB,)) + packed
            # Below the threshold, or the sample did not shrink: store.
            if stats is not None:
                stats.record_stored()
        return bytes((MAGIC_RAW,)) + bytes(body)

    def _write_str(self, s: str, out: bytearray, strings: Dict[str, int]) -> None:
        idx = strings.get(s)
        if idx is None:
            strings[s] = len(strings)
            raw = s.encode("utf-8")
            out.append(_T_SDEF)
            _write_uvarint(out, len(raw))
            out += raw
        else:
            out.append(_T_SREF)
            _write_uvarint(out, idx)

    def _encode_value(
        self, obj: Any, out: bytearray, strings: Dict[str, int]
    ) -> None:
        # Dispatch order mirrors JsonCodec._encode_into: exact scalar
        # classes, None, registered types, dict, list/tuple, scalar
        # subclasses (coerced to their base value, like json.dumps).
        cls = obj.__class__
        if cls is str:
            self._write_str(obj, out, strings)
            return
        if cls is int:
            out.append(_T_INT)
            _write_uvarint(out, _zigzag(obj))
            return
        if cls is float:
            out.append(_T_FLOAT)
            out += _DOUBLE.pack(obj)
            return
        if cls is bool:
            out.append(_T_TRUE if obj else _T_FALSE)
            return
        if obj is None:
            out.append(_T_NULL)
            return
        entry = codec_mod._dispatch_for(cls)
        if entry is not None:
            tag, to_jsonable = entry
            if tag == _IMAGE_TAG:
                self._encode_image(obj, out, strings)
                return
            if tag == _VVEC_TAG:
                self._encode_vvec(obj, out, strings)
                return
            if tag == _PSET_TAG:
                self._encode_pset(obj, out, strings)
                return
            if tag == _DELTA_TAG:
                self._encode_delta(obj, out, strings)
                return
            out.append(_T_TAGGED)
            self._write_str(tag, out, strings)
            self._encode_value(to_jsonable(obj), out, strings)
            return
        if isinstance(obj, dict):
            out.append(_T_DICT)
            _write_uvarint(out, len(obj))
            for k, v in obj.items():
                self._write_str(k if type(k) is str else str(k), out, strings)
                self._encode_value(v, out, strings)
            return
        if isinstance(obj, (list, tuple)):
            out.append(_T_LIST)
            _write_uvarint(out, len(obj))
            for v in obj:
                self._encode_value(v, out, strings)
            return
        if isinstance(obj, bool):  # bool subclass cannot exist, but order
            out.append(_T_TRUE if obj else _T_FALSE)  # matches JsonCodec
            return
        if isinstance(obj, int):  # IntEnum and friends: coerce like JSON
            out.append(_T_INT)
            _write_uvarint(out, _zigzag(int(obj)))
            return
        if isinstance(obj, float):
            out.append(_T_FLOAT)
            out += _DOUBLE.pack(float(obj))
            return
        if isinstance(obj, str):
            self._write_str(str(obj), out, strings)
            return
        raise CodecError(
            f"type {type(obj).__name__} is not wire-encodable; "
            f"register it with register_codec_type()"
        )

    # -- fast paths ------------------------------------------------------
    def _encode_image(self, img: Any, out: bytearray, strings: Dict[str, int]) -> None:
        """One record per cell: key, version, value — the key crosses the
        wire once instead of appearing in both the cells dict and the
        version vector.  Version entries without a live cell (possible
        after restricts/merges) follow as a separate (key, version) list.
        """
        out.append(_T_IMAGE)
        cells = img.cells
        versions = img.versions
        vget = versions.get
        _write_uvarint(out, len(cells))
        for k, v in cells.items():
            key = k if type(k) is str else str(k)
            self._write_str(key, out, strings)
            _write_uvarint(out, vget(key))
            self._encode_value(v, out, strings)
        extra = [k for k in versions.keys() if k not in cells]
        _write_uvarint(out, len(extra))
        for k in extra:
            self._write_str(k, out, strings)
            _write_uvarint(out, vget(k))

    def _encode_vvec(self, vv: Any, out: bytearray, strings: Dict[str, int]) -> None:
        out.append(_T_VVEC)
        keys = list(vv.keys())
        _write_uvarint(out, len(keys))
        vget = vv.get
        for k in keys:
            self._write_str(k, out, strings)
            _write_uvarint(out, vget(k))

    def _encode_pset(self, ps: Any, out: bytearray, strings: Dict[str, int]) -> None:
        out.append(_T_PSET)
        _write_uvarint(out, len(ps))
        for p in ps:  # deterministic name-sorted order
            self._write_str(p.name, out, strings)
            self._encode_value(p.domain.to_jsonable(), out, strings)

    def _encode_delta(self, d: Any, out: bytearray, strings: Dict[str, int]) -> None:
        out.append(_T_DELTA)
        self._encode_image(d.image, out, strings)
        _write_uvarint(out, _zigzag(d.base_seq))
        _write_uvarint(out, _zigzag(d.as_of))
        out.append(1 if d.complete else 0)
        _write_uvarint(out, _zigzag(d.slice_size))

    # -- decoding --------------------------------------------------------
    def decode(self, raw: bytes) -> Message:
        if not raw:
            raise CodecError("cannot decode empty frame")
        magic = raw[0]
        if magic == MAGIC_ZLIB:
            try:
                body = zlib.decompress(raw[1:])
            except zlib.error as exc:
                raise CodecError(f"cannot decompress frame: {exc}") from exc
        elif magic == MAGIC_RAW:
            body = raw[1:]
        elif magic == 0x7B:  # '{' — a JSON frame on a mixed link
            return self._json.decode(raw)
        else:
            raise CodecError(f"unknown binary frame magic: {magic:#x}")
        reader = _Reader(body)
        try:
            msg_type = self._decode_value(reader)
            src = self._decode_value(reader)
            dst = self._decode_value(reader)
            msg_id = self._decode_value(reader)
            reply_to = self._decode_value(reader)
            payload = self._decode_value(reader)
        except CodecError:
            raise
        except (ValueError, TypeError, KeyError, IndexError, struct.error) as exc:
            raise CodecError(f"cannot decode frame: {exc}") from exc
        if not isinstance(msg_type, str):
            raise CodecError(f"frame is not a message: bad msg_type {msg_type!r}")
        return Message(
            msg_type=msg_type,
            src=src,
            dst=dst,
            payload=payload,
            msg_id=msg_id,
            reply_to=reply_to,
        )

    def _read_str(self, r: _Reader) -> str:
        tag = r.byte()
        if tag == _T_SDEF:
            s = str(r.take(r.uvarint()), "utf-8")
            r.strings.append(s)
            return s
        if tag == _T_SREF:
            idx = r.uvarint()
            try:
                return r.strings[idx]
            except IndexError:
                raise CodecError(f"string table reference out of range: {idx}")
        raise CodecError(f"expected string, found value tag {tag:#x}")

    def _decode_value(self, r: _Reader) -> Any:
        tag = r.byte()
        if tag == _T_SDEF:
            s = str(r.take(r.uvarint()), "utf-8")
            r.strings.append(s)
            return s
        if tag == _T_SREF:
            idx = r.uvarint()
            try:
                return r.strings[idx]
            except IndexError:
                raise CodecError(f"string table reference out of range: {idx}")
        if tag == _T_INT:
            return _unzigzag(r.uvarint())
        if tag == _T_DICT:
            return {
                self._read_str(r): self._decode_value(r)
                for _ in range(r.uvarint())
            }
        if tag == _T_LIST:
            return [self._decode_value(r) for _ in range(r.uvarint())]
        if tag == _T_FLOAT:
            return _DOUBLE.unpack(r.take(8))[0]
        if tag == _T_NULL:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_IMAGE:
            return self._decode_image(r)
        if tag == _T_VVEC:
            return self._from_registry(_VVEC_TAG)(
                {self._read_str(r): r.uvarint() for _ in range(r.uvarint())}
            )
        if tag == _T_PSET:
            items = [
                {"name": self._read_str(r), "domain": self._decode_value(r)}
                for _ in range(r.uvarint())
            ]
            return self._from_registry(_PSET_TAG)(items)
        if tag == _T_DELTA:
            if r.byte() != _T_IMAGE:
                raise CodecError("malformed delta frame: missing image")
            image = self._decode_image(r)
            return self._from_registry(_DELTA_TAG)(
                {
                    "image": image,
                    "base_seq": _unzigzag(r.uvarint()),
                    "as_of": _unzigzag(r.uvarint()),
                    "complete": bool(r.byte()),
                    "slice_size": _unzigzag(r.uvarint()),
                }
            )
        if tag == _T_TAGGED:
            type_tag = self._read_str(r)
            data = self._decode_value(r)
            return self._from_registry(type_tag)(data)
        raise CodecError(f"unknown value tag in binary frame: {tag:#x}")

    def _decode_image(self, r: _Reader) -> Any:
        cells: Dict[str, Any] = {}
        versions: Dict[str, int] = {}
        for _ in range(r.uvarint()):
            key = self._read_str(r)
            versions[key] = r.uvarint()
            cells[key] = self._decode_value(r)
        for _ in range(r.uvarint()):
            key = self._read_str(r)
            versions[key] = r.uvarint()
        return self._from_registry(_IMAGE_TAG)(
            {"cells": cells, "versions": versions}
        )

    @staticmethod
    def _from_registry(tag: str) -> Callable[[Any], Any]:
        try:
            return codec_mod._REGISTRY[tag][2]
        except KeyError:
            raise CodecError(f"unknown codec tag {tag!r} in frame")


# ---------------------------------------------------------------------------
# Standalone value encoding (used by the durability WAL)
# ---------------------------------------------------------------------------
# One shared instance; every call gets a fresh per-value string table,
# so encoded values are self-contained byte strings (unlike message
# frames, whose string table spans the whole frame).

_VALUE_CODEC = BinaryCodec()


def encode_value(obj: Any) -> bytes:
    """Encode one value (scalars, containers, registered types) to bytes.

    The byte string is self-contained: it carries its own string table
    and decodes without any frame context.  ``ObjectImage`` payloads get
    the fused (key, version, value) cell records, exactly as on the
    wire — which is why the WAL reuses this instead of inventing its own
    record format.
    """
    body = bytearray()
    try:
        _VALUE_CODEC._encode_value(obj, body, {})
    except CodecError:
        raise
    except (TypeError, ValueError, struct.error) as exc:
        raise CodecError(f"cannot encode value {obj!r}: {exc}") from exc
    return bytes(body)


def decode_value(raw: bytes) -> Any:
    """Decode one :func:`encode_value` byte string back to its value.

    Trailing bytes after the value are an error — a WAL record is one
    value, so leftovers mean the framing around it is wrong.
    """
    reader = _Reader(raw)
    try:
        value = _VALUE_CODEC._decode_value(reader)
    except CodecError:
        raise
    except (ValueError, TypeError, KeyError, IndexError, struct.error) as exc:
        raise CodecError(f"cannot decode value: {exc}") from exc
    if reader.pos != len(reader.buf):
        raise CodecError(
            f"trailing bytes after value: {len(reader.buf) - reader.pos}"
        )
    return value


# ---------------------------------------------------------------------------
# Codec selection
# ---------------------------------------------------------------------------
# The negotiable codec universe.  Spec strings are what SystemConfig-level
# callers pass (``codec="binary"``) and what TCP peers advertise in their
# hello frames; instances pass through untouched.

CODEC_JSON = "json"
CODEC_BINARY = "binary"
CODEC_BINARY_ZLIB = "binary+zlib"

_SPECS: Dict[str, Callable[[], Any]] = {
    CODEC_JSON: JsonCodec,
    CODEC_BINARY: BinaryCodec,
    CODEC_BINARY_ZLIB: lambda: BinaryCodec(compress_level=6),
}


def resolve_codec(spec: Any = None) -> Any:
    """Build a codec from a spec: ``None``/"json" | "binary" |
    "binary+zlib" | an instance implementing ``encode``/``decode``."""
    if spec is None:
        return JsonCodec()
    if isinstance(spec, str):
        factory = _SPECS.get(spec)
        if factory is None:
            raise CodecError(
                f"unknown codec spec {spec!r}; choose from "
                f"{sorted(_SPECS)} or pass a codec instance"
            )
        return factory()
    if callable(getattr(spec, "encode", None)) and callable(
        getattr(spec, "decode", None)
    ):
        return spec
    raise CodecError(f"not a codec: {spec!r}")


def codec_name(codec: Any) -> str:
    """The negotiation name a codec instance answers to.

    Compressed and raw binary share one wire name — the frame magic
    distinguishes them, so any binary decoder handles both.
    """
    if isinstance(codec, BinaryCodec):
        return CODEC_BINARY
    if isinstance(codec, JsonCodec):
        return CODEC_JSON
    return getattr(codec, "name", type(codec).__name__)
