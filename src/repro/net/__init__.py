"""Network substrate: messages, codecs, transports, topology, statistics.

The Flecc protocol engines (directory manager, cache managers) are
transport-agnostic: they talk to a :class:`~repro.net.transport.Transport`
which provides message delivery, a clock, timers, and completions.

Three interchangeable transports are provided (see
:func:`~repro.net.transport.resolve_transport`):

- :class:`~repro.net.sim_transport.SimTransport` — deterministic
  discrete-event delivery over a :class:`~repro.net.topology.Topology`
  (per-link latencies), used by all benchmarks.
- :class:`~repro.net.tcp_transport.TcpTransport` — real TCP sockets on
  localhost with length-prefixed frames and per-connection codec
  negotiation (JSON fallback), matching the paper's "prototype with
  sockets" character.
- :class:`~repro.net.aio_transport.AioTcpTransport` — the same wire
  contract on one asyncio event loop: endpoints multiplex one socket
  pair, writes coalesce into single flushes, and bounded send queues
  push back on senders instead of buffering unboundedly.

Two wire codecs share one type registry:
:class:`~repro.net.codec.JsonCodec` (text, always available) and
:class:`~repro.net.binary_codec.BinaryCodec` (compact binary with
optional adaptive zlib compression).  :func:`resolve_codec` maps the
``codec=`` spec strings ("json" | "binary" | "binary+zlib") to
instances.

Message *counts* — the paper's efficiency metric (Fig 4) — are recorded
identically on both by :class:`~repro.net.stats.MessageStats`.
"""

from repro.net.message import Message
from repro.net.codec import JsonCodec, register_codec_type
from repro.net.binary_codec import BinaryCodec, codec_name, resolve_codec
from repro.net.stats import MessageStats
from repro.net.topology import Topology, lan_topology, wan_topology
from repro.net.transport import (
    Completion,
    Endpoint,
    Transport,
    resolve_transport,
    transport_name,
)
from repro.net.sim_transport import SimCompletion, SimTransport
from repro.net.tcp_transport import TcpTransport, ThreadCompletion
from repro.net.aio_transport import AioTcpTransport
from repro.net.reliability import ReliableTransport

__all__ = [
    "Message",
    "JsonCodec",
    "BinaryCodec",
    "codec_name",
    "resolve_codec",
    "register_codec_type",
    "MessageStats",
    "Topology",
    "lan_topology",
    "wan_topology",
    "Completion",
    "Endpoint",
    "Transport",
    "SimTransport",
    "SimCompletion",
    "TcpTransport",
    "ThreadCompletion",
    "AioTcpTransport",
    "ReliableTransport",
    "resolve_transport",
    "transport_name",
]
