"""The message envelope exchanged between protocol endpoints.

Every control message in the system — Flecc protocol traffic, baseline
protocol traffic, PSF deployment commands — travels as a
:class:`Message`.  Keeping a single envelope lets
:class:`~repro.net.stats.MessageStats` count the paper's efficiency
metric uniformly across protocols and transports.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

_msg_ids = itertools.count(1)


def next_message_id() -> int:
    """Monotonically increasing process-wide message id."""
    return next(_msg_ids)


def reset_message_ids() -> None:
    """Restart the process-wide id counter at 1.

    Each experiment run resets the counter so a run's output is
    independent of what else executed in the same process — the property
    that makes serial and multiprocess experiment results comparable.
    """
    global _msg_ids
    _msg_ids = itertools.count(1)


@dataclass
class Message:
    """A routed control message.

    Attributes:
        msg_type: Protocol-level message kind (e.g. ``"PULL_REQ"``).
        src: Sender address (string, transport-level).
        dst: Receiver address.
        payload: JSON-serializable body (codec-registered objects allowed).
        msg_id: Unique id, assigned at construction.
        reply_to: ``msg_id`` of the request this message answers, if any.
    """

    msg_type: str
    src: str
    dst: str
    payload: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=next_message_id)
    reply_to: Optional[int] = None

    def reply(self, msg_type: str, payload: Optional[Dict[str, Any]] = None) -> "Message":
        """Build the response message (dst/src swapped, correlated id)."""
        return Message(
            msg_type=msg_type,
            src=self.dst,
            dst=self.src,
            payload=payload or {},
            reply_to=self.msg_id,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the wire codec."""
        return {
            "msg_type": self.msg_type,
            "src": self.src,
            "dst": self.dst,
            "payload": self.payload,
            "msg_id": self.msg_id,
            "reply_to": self.reply_to,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Message":
        return cls(
            msg_type=d["msg_type"],
            src=d["src"],
            dst=d["dst"],
            payload=d.get("payload", {}),
            msg_id=d.get("msg_id", 0),
            reply_to=d.get("reply_to"),
        )

    def __str__(self) -> str:
        corr = f" re:{self.reply_to}" if self.reply_to is not None else ""
        return f"[{self.msg_id}{corr}] {self.src} -> {self.dst} {self.msg_type}"


# ---------------------------------------------------------------------------
# Coalesced frames
# ---------------------------------------------------------------------------
# A BATCH message is a transport-level envelope: one frame carrying
# several independent sub-messages headed to endpoints on the same node.
# The sender pays one send (one codec pass, one frame, one latency) for
# the whole group; the receiving transport splits the envelope and
# dispatches each sub-message to its own endpoint handler, so protocol
# engines never see BATCH itself.

BATCH = "BATCH"


def make_batch(src: str, dst: str, messages: Sequence[Message]) -> Message:
    """Wrap ``messages`` into one BATCH frame addressed to ``dst``.

    ``dst`` must be a bound endpoint on the node the sub-messages target
    (conventionally the first sub-message's destination).  An empty
    batch is meaningless on the wire and is rejected.
    """
    if not messages:
        raise ValueError("cannot build an empty BATCH")
    return Message(
        msg_type=BATCH,
        src=src,
        dst=dst,
        payload={"messages": [m.to_dict() for m in messages]},
    )


def is_batch(msg: Message) -> bool:
    return msg.msg_type == BATCH


def split_batch(msg: Message) -> List[Message]:
    """Unwrap a BATCH frame into its sub-messages (delivery order)."""
    if msg.msg_type != BATCH:
        raise ValueError(f"not a BATCH message: {msg.msg_type}")
    subs = msg.payload.get("messages")
    if not subs:
        raise ValueError("empty BATCH frame")
    return [Message.from_dict(d) for d in subs]
