"""Real TCP socket transport (localhost), length-prefixed frames.

This backend keeps the reproduction faithful to the paper's networked
prototype: each bound address gets a listening socket; ``send`` opens
(or reuses) a connection to the destination's port and writes a
4-byte big-endian length followed by the encoded message.  A
per-endpoint reader thread dispatches incoming messages to the handler,
serialized by a per-endpoint lock so handlers never run concurrently
with themselves (matching the single-threaded sim semantics).

Codec negotiation: the first frame a client writes on a fresh
connection is a JSON-encoded ``CODEC_HELLO`` advertising the codecs it
supports and the one it prefers.  The listener answers with a
JSON-encoded ``CODEC_WELCOME`` naming the codec every later frame on
that connection will use — the client's preference if the server has
it, else the first advertised codec the server shares, else ``"json"``.
A peer whose first frame is *not* a hello (a legacy JSON speaker) gets
its message delivered normally and the connection stays on JSON, so
mixed-version links degrade instead of breaking.

Time: ``now()`` is wall-clock seconds since transport creation, scaled
by ``time_scale`` so tests can use the same trigger expressions as the
simulated runs.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import CodecError, TransportError
from repro.net.codec import JsonCodec
from repro.net.message import BATCH, Message, split_batch
from repro.net.transport import Completion, Endpoint, TimerHandle, Transport

_LEN = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024

# Codec-negotiation handshake message types.  Both frames are always
# JSON-encoded (the one format every peer speaks) and are consumed by
# the transport itself — endpoint handlers never see them.
CODEC_HELLO = "CODEC_HELLO"
CODEC_WELCOME = "CODEC_WELCOME"

# Default for ThreadCompletion.wait: long enough for any test or demo
# round-trip, finite so a lost reply surfaces as a clear TransportError
# instead of blocking the calling thread forever.
DEFAULT_WAIT_TIMEOUT = 30.0


class ThreadCompletion(Completion):
    """Completion backed by ``threading.Event`` (blockable from threads)."""

    def __init__(self, name: str = "") -> None:
        self.name = name or "completion"
        self._ev = threading.Event()
        self._lock = threading.Lock()
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: List[Callable[[Completion], None]] = []

    def resolve(self, value: Any = None) -> None:
        with self._lock:
            if self._ev.is_set():
                raise TransportError(f"{self.name} already completed")
            self._value = value
            callbacks = list(self._callbacks)
            self._ev.set()
        for cb in callbacks:
            cb(self)

    def fail(self, exc: BaseException) -> None:
        with self._lock:
            if self._ev.is_set():
                raise TransportError(f"{self.name} already completed")
            self._exc = exc
            callbacks = list(self._callbacks)
            self._ev.set()
        for cb in callbacks:
            cb(self)

    def then(self, callback: Callable[[Completion], None]) -> None:
        run_now = False
        with self._lock:
            if self._ev.is_set():
                run_now = True
            else:
                self._callbacks.append(callback)
        if run_now:
            callback(self)

    @property
    def done(self) -> bool:
        return self._ev.is_set()

    @property
    def value(self) -> Any:
        if not self._ev.is_set():
            raise TransportError(f"{self.name}: value read before completion")
        if self._exc is not None:
            raise self._exc
        return self._value

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until completion; ``timeout`` in wall-clock seconds.

        ``None`` means the finite :data:`DEFAULT_WAIT_TIMEOUT`, never
        indefinite blocking: a lost reply must surface as an error
        naming what was being waited on, not as a hung thread.
        """
        if timeout is None:
            timeout = DEFAULT_WAIT_TIMEOUT
        if not self._ev.wait(timeout):
            raise TransportError(
                f"timed out after {timeout}s waiting on {self.name!r} "
                f"(the reply for this pending message type never arrived)"
            )
        return self.value


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly n bytes or return None on clean EOF."""
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return buf


class _Listener:
    """Listening socket + acceptor/reader threads for one endpoint."""

    def __init__(self, transport: "TcpTransport", ep: Endpoint) -> None:
        self.transport = transport
        self.ep = ep
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(64)
        self.port = self.sock.getsockname()[1]
        self.running = True
        self.handler_lock = threading.Lock()
        self.threads: List[threading.Thread] = []
        # Accepted sockets, so stop() can close them and unblock reader
        # threads parked in _recv_exact on a half-open connection (a
        # peer that died mid-frame never sends EOF).
        self._conns: List[socket.socket] = []
        self._conns_lock = threading.Lock()
        t = threading.Thread(
            target=self._accept_loop, name=f"accept-{ep.address}", daemon=True
        )
        t.start()
        self.threads.append(t)

    def _accept_loop(self) -> None:
        while self.running:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return  # socket closed during shutdown
            with self._conns_lock:
                if not self.running:
                    try:
                        conn.close()
                    except OSError:
                        pass
                    return
                self._conns.append(conn)
            t = threading.Thread(
                target=self._read_loop,
                args=(conn,),
                name=f"read-{self.ep.address}",
                daemon=True,
            )
            t.start()
            self.threads.append(t)

    def _read_loop(self, conn: socket.socket) -> None:
        # Until negotiation says otherwise every frame is JSON; the
        # first frame may be a CODEC_HELLO that switches the codec for
        # the rest of the connection.
        codec: Any = self.transport.json_codec
        negotiated = False
        try:
            while self.running:
                header = _recv_exact(conn, _LEN.size)
                if header is None:
                    return
                (length,) = _LEN.unpack(header)
                if length > _MAX_FRAME:
                    raise TransportError(f"frame too large: {length}")
                body = _recv_exact(conn, length)
                if body is None:
                    return
                if not negotiated:
                    negotiated = True
                    msg, codec = self.transport._first_frame(
                        conn, self.ep.address, body, codec
                    )
                    if msg is None:  # hello consumed, welcome written
                        continue
                else:
                    msg = codec.decode(body)
                if msg.msg_type == BATCH:
                    # Coalesced frame: split at the receiving side and
                    # route each sub-message to its own endpoint (the
                    # address book is process-local), so handlers never
                    # see BATCH itself.
                    for sub in split_batch(msg):
                        self.transport._dispatch_local(sub)
                    continue
                # Serialize handler invocations per endpoint so engine
                # state sees the same one-at-a-time semantics as in sim.
                with self.handler_lock:
                    if not self.ep.closed:
                        self.ep.handler(msg)
        except (OSError, TransportError):
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def stop(self) -> None:
        self.running = False
        try:
            self.sock.close()
        except OSError:
            pass
        # Close accepted connections too: a reader blocked in
        # _recv_exact on a half-open socket only wakes when its fd dies.
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    def join(self, deadline: float) -> None:
        """Join acceptor + reader threads until ``deadline`` (monotonic).

        Bounded: a thread that refuses to die (pathological peer) is
        abandoned as a daemon rather than hanging close() forever.
        """
        for t in self.threads:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            if t is not threading.current_thread():
                t.join(remaining)


class TcpTransport(Transport):
    """Localhost TCP backend with a process-local address book."""

    def __init__(self, time_scale: float = 1000.0, codec: Any = None) -> None:
        """``time_scale``: transport time units per wall-clock second.

        The default (1000) makes one time unit ~= 1 ms, so trigger
        expressions like ``t > 1500`` mean "after 1.5 s" on TCP while
        being pure numbers in simulation.

        ``codec``: preferred wire codec — ``"json"`` (default),
        ``"binary"``, ``"binary+zlib"``, or a codec instance.  JSON is
        always kept as the negotiation fallback.
        """
        super().__init__()
        self.time_scale = time_scale
        self._t0 = time.monotonic()
        self._listeners: Dict[str, _Listener] = {}
        # (src, dst) -> (socket, port it was connected to, negotiated
        # codec name); the port is compared against the live listener so
        # a re-bound endpoint (new port) forces a fresh connection and a
        # fresh handshake.
        self._conns: Dict[
            Tuple[str, str], Tuple[socket.socket, int, str]
        ] = {}
        self._conn_lock = threading.Lock()
        self._timers: List[threading.Timer] = []
        self._closed = False
        self.set_codec(codec)

    # -- codec selection & negotiation ------------------------------------
    def set_codec(self, codec: Any) -> None:
        """Swap the preferred wire codec; cached connections are dropped
        so every link renegotiates on next use."""
        from repro.net.binary_codec import codec_name, resolve_codec

        preferred = resolve_codec(codec)
        preferred.stats = self.stats
        name = codec_name(preferred)
        if name == "json":
            json_codec = preferred
        else:
            json_codec = getattr(self, "json_codec", None) or JsonCodec()
        #: Always-available JSON fallback (handshake frames, legacy peers).
        self.json_codec = json_codec
        #: name -> codec instance this transport can speak.
        self._codecs: Dict[str, Any] = {"json": json_codec, name: preferred}
        self._preferred_name = name
        #: Preferred codec instance (back-compat attribute: when the
        #: link negotiates the preferred codec — always the case when
        #: both ends share this transport — sends encode with it).
        self.codec = preferred
        with self._conn_lock:
            for entry in self._conns.values():
                try:
                    entry[0].close()
                except OSError:
                    pass
            self._conns.clear()

    @property
    def preferred_codec(self) -> str:
        return self._preferred_name

    @property
    def supported_codecs(self) -> Tuple[str, ...]:
        return tuple(sorted(self._codecs))

    def negotiated_codec(self, src: str, dst: str) -> Optional[str]:
        """Codec name the (src, dst) link agreed on (None before any
        send established the connection)."""
        with self._conn_lock:
            cached = self._conns.get((src, dst))
        return cached[2] if cached is not None else None

    def _choose_codec(self, payload: Any) -> str:
        """Server-side pick from a hello payload: the client's stated
        preference if we speak it, else the first advertised codec we
        share, else JSON."""
        if not isinstance(payload, dict):
            return "json"
        prefer = payload.get("prefer")
        if isinstance(prefer, str) and prefer in self._codecs:
            return prefer
        for name in payload.get("supported") or ():
            if isinstance(name, str) and name in self._codecs:
                return name
        return "json"

    def _first_frame(
        self, conn: socket.socket, address: str, body: bytes, codec: Any
    ) -> Tuple[Optional[Message], Any]:
        """Handle the first frame of an inbound connection.

        A CODEC_HELLO is answered with a CODEC_WELCOME and consumed
        (returns ``(None, negotiated_codec)``); anything else is a
        legacy peer's ordinary message, delivered as-is on JSON.
        """
        try:
            msg = self.json_codec.decode(body)
        except CodecError:
            # Not JSON — a peer that skipped the handshake but speaks a
            # format we know; fall back to the frame-sniffing decoder.
            return codec.decode(body), codec
        if msg.msg_type != CODEC_HELLO:
            return msg, codec
        chosen = self._choose_codec(msg.payload)
        welcome = Message(
            CODEC_WELCOME,
            src=address,
            dst=msg.src,
            payload={"use": chosen, "supported": sorted(self._codecs)},
        )
        raw = self.json_codec.encode(welcome)
        try:
            conn.sendall(_LEN.pack(len(raw)) + raw)
        except OSError:
            pass  # client gone; reader loop will see EOF next
        return None, self._codecs[chosen]

    def _handshake(self, sock: socket.socket, src: str, dst: str) -> str:
        """Client side: advertise codecs, block for the welcome, return
        the agreed codec name (JSON when anything goes sideways)."""
        hello = Message(
            CODEC_HELLO,
            src=src,
            dst=dst,
            payload={
                "supported": sorted(self._codecs),
                "prefer": self._preferred_name,
            },
        )
        raw = self.json_codec.encode(hello)
        sock.sendall(_LEN.pack(len(raw)) + raw)
        try:
            header = _recv_exact(sock, _LEN.size)
            if header is None:
                return "json"
            (length,) = _LEN.unpack(header)
            if length > _MAX_FRAME:
                return "json"
            body = _recv_exact(sock, length)
            if body is None:
                return "json"
            welcome = self.json_codec.decode(body)
        except (OSError, CodecError):
            return "json"
        if welcome.msg_type != CODEC_WELCOME:
            return "json"
        use = welcome.payload.get("use") if welcome.payload else None
        return use if isinstance(use, str) and use in self._codecs else "json"

    # -- Transport hooks --------------------------------------------------
    def _on_bind(self, ep: Endpoint) -> None:
        self._listeners[ep.address] = _Listener(self, ep)

    def _on_unbind(self, ep: Endpoint) -> None:
        listener = self._listeners.pop(ep.address, None)
        if listener is not None:
            listener.stop()

    def port_of(self, address: str) -> int:
        listener = self._listeners.get(address)
        if listener is None:
            raise TransportError(f"no listener for address {address}")
        return listener.port

    def _dispatch_local(self, msg: Message) -> None:
        """Deliver a split-out batch sub-message to its own endpoint.

        Uses the destination endpoint's handler lock so the sub-message
        sees the same one-at-a-time handler semantics as a message that
        arrived on its own socket.
        """
        listener = self._listeners.get(msg.dst)
        if listener is None or listener.ep.closed:
            self.stats.record_drop(msg)
            return
        with listener.handler_lock:
            if not listener.ep.closed:
                listener.ep.handler(msg)

    # -- Transport API --------------------------------------------------------
    def send(self, msg: Message) -> None:
        if self._closed:
            raise TransportError("transport closed")
        recorded = False
        # A cached connection may have died (peer endpoint was closed
        # and re-bound); reconnect once before giving up.
        for attempt in (1, 2):
            listener = self._listeners.get(msg.dst)
            if listener is None:
                # Same semantics as sim: message to a vanished endpoint
                # is lost (no link, so no negotiated codec to size with).
                if not recorded:
                    self.stats.record(msg)
                self.stats.record_drop(msg)
                return
            sock, codec = self._connection(msg.src, msg.dst, listener.port)
            t0 = time.perf_counter_ns()
            raw = codec.encode(msg)
            # Measure the frame directly: send() runs concurrently from
            # listener/timer/CM threads, so the length prefix must come
            # from the bytes in hand, never from shared codec state —
            # otherwise a racing encode could make the prefix disagree
            # with the payload and corrupt stream framing.
            size = len(raw)
            if not recorded:
                self.stats.record_encode(size, time.perf_counter_ns() - t0)
                self.stats.record(msg, size=size)
                recorded = True
            frame = _LEN.pack(size) + raw
            try:
                with self._conn_lock:
                    sock.sendall(frame)
                return
            except OSError as exc:
                self._drop_connection(msg.src, msg.dst)
                if attempt == 2:
                    raise TransportError(f"send failed {msg}: {exc}") from exc

    def _connection(
        self, src: str, dst: str, port: int
    ) -> Tuple[socket.socket, Any]:
        """Connected socket for the link plus the codec it negotiated."""
        key = (src, dst)
        with self._conn_lock:
            cached = self._conns.get(key)
            if cached is not None:
                sock, cached_port, codec_name = cached
                if cached_port == port:
                    return sock, self._codecs.get(codec_name, self.json_codec)
                try:
                    sock.close()  # listener was re-bound on a new port
                except OSError:
                    pass
                del self._conns[key]
            sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                chosen = self._handshake(sock, src, dst)
            except OSError as exc:
                try:
                    sock.close()
                except OSError:
                    pass
                raise TransportError(
                    f"codec handshake failed {src}->{dst}: {exc}"
                ) from exc
            self._conns[key] = (sock, port, chosen)
            return sock, self._codecs.get(chosen, self.json_codec)

    def _drop_connection(self, src: str, dst: str) -> None:
        with self._conn_lock:
            cached = self._conns.pop((src, dst), None)
        if cached is not None:
            try:
                cached[0].close()
            except OSError:
                pass

    def now(self) -> float:
        return (time.monotonic() - self._t0) * self.time_scale

    def schedule(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        def run() -> None:
            # A Timer that fires in the window between close() setting
            # _closed and cancel() landing would crash its thread on the
            # dead transport; swallow those shutdown races.
            try:
                fn()
            except (TransportError, OSError):
                if not self._closed:
                    raise

        timer = threading.Timer(delay / self.time_scale, run)
        timer.daemon = True
        timer.start()
        self._timers.append(timer)
        return TimerHandle(timer.cancel)

    def completion(self, name: str = "") -> ThreadCompletion:
        return ThreadCompletion(name)

    def close(self, join_timeout: float = 2.0) -> None:
        if self._closed:
            return
        self._closed = True
        for t in self._timers:
            t.cancel()
        self._timers.clear()
        # Snapshot listeners first: super().close() unbinds endpoints,
        # which pops them from the dict, but we still must join their
        # threads afterwards.
        listeners = list(self._listeners.values())
        super().close()  # closes endpoints -> stops listeners
        with self._conn_lock:
            for entry in self._conns.values():
                try:
                    entry[0].close()
                except OSError:
                    pass
            self._conns.clear()
        # Bounded join across *all* listeners: one shared deadline, so
        # close() returns in ~join_timeout even with many stuck readers.
        deadline = time.monotonic() + join_timeout
        for listener in listeners:
            listener.join(deadline)
