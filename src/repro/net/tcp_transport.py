"""Real TCP socket transport (localhost), length-prefixed JSON frames.

This backend keeps the reproduction faithful to the paper's networked
prototype: each bound address gets a listening socket; ``send`` opens
(or reuses) a connection to the destination's port and writes a
4-byte big-endian length followed by the JSON-encoded message.  A
per-endpoint reader thread dispatches incoming messages to the handler,
serialized by a per-endpoint lock so handlers never run concurrently
with themselves (matching the single-threaded sim semantics).

Time: ``now()`` is wall-clock seconds since transport creation, scaled
by ``time_scale`` so tests can use the same trigger expressions as the
simulated runs.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.net.codec import JsonCodec
from repro.net.message import BATCH, Message, split_batch
from repro.net.transport import Completion, Endpoint, TimerHandle, Transport

_LEN = struct.Struct(">I")
_MAX_FRAME = 64 * 1024 * 1024

# Default for ThreadCompletion.wait: long enough for any test or demo
# round-trip, finite so a lost reply surfaces as a clear TransportError
# instead of blocking the calling thread forever.
DEFAULT_WAIT_TIMEOUT = 30.0


class ThreadCompletion(Completion):
    """Completion backed by ``threading.Event`` (blockable from threads)."""

    def __init__(self, name: str = "") -> None:
        self.name = name or "completion"
        self._ev = threading.Event()
        self._lock = threading.Lock()
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: List[Callable[[Completion], None]] = []

    def resolve(self, value: Any = None) -> None:
        with self._lock:
            if self._ev.is_set():
                raise TransportError(f"{self.name} already completed")
            self._value = value
            callbacks = list(self._callbacks)
            self._ev.set()
        for cb in callbacks:
            cb(self)

    def fail(self, exc: BaseException) -> None:
        with self._lock:
            if self._ev.is_set():
                raise TransportError(f"{self.name} already completed")
            self._exc = exc
            callbacks = list(self._callbacks)
            self._ev.set()
        for cb in callbacks:
            cb(self)

    def then(self, callback: Callable[[Completion], None]) -> None:
        run_now = False
        with self._lock:
            if self._ev.is_set():
                run_now = True
            else:
                self._callbacks.append(callback)
        if run_now:
            callback(self)

    @property
    def done(self) -> bool:
        return self._ev.is_set()

    @property
    def value(self) -> Any:
        if not self._ev.is_set():
            raise TransportError(f"{self.name}: value read before completion")
        if self._exc is not None:
            raise self._exc
        return self._value

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until completion; ``timeout`` in wall-clock seconds.

        ``None`` means the finite :data:`DEFAULT_WAIT_TIMEOUT`, never
        indefinite blocking: a lost reply must surface as an error
        naming what was being waited on, not as a hung thread.
        """
        if timeout is None:
            timeout = DEFAULT_WAIT_TIMEOUT
        if not self._ev.wait(timeout):
            raise TransportError(
                f"timed out after {timeout}s waiting on {self.name!r} "
                f"(the reply for this pending message type never arrived)"
            )
        return self.value


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly n bytes or return None on clean EOF."""
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return buf


class _Listener:
    """Listening socket + acceptor/reader threads for one endpoint."""

    def __init__(self, transport: "TcpTransport", ep: Endpoint) -> None:
        self.transport = transport
        self.ep = ep
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(64)
        self.port = self.sock.getsockname()[1]
        self.running = True
        self.handler_lock = threading.Lock()
        self.threads: List[threading.Thread] = []
        t = threading.Thread(
            target=self._accept_loop, name=f"accept-{ep.address}", daemon=True
        )
        t.start()
        self.threads.append(t)

    def _accept_loop(self) -> None:
        while self.running:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return  # socket closed during shutdown
            t = threading.Thread(
                target=self._read_loop,
                args=(conn,),
                name=f"read-{self.ep.address}",
                daemon=True,
            )
            t.start()
            self.threads.append(t)

    def _read_loop(self, conn: socket.socket) -> None:
        codec = self.transport.codec
        try:
            while self.running:
                header = _recv_exact(conn, _LEN.size)
                if header is None:
                    return
                (length,) = _LEN.unpack(header)
                if length > _MAX_FRAME:
                    raise TransportError(f"frame too large: {length}")
                body = _recv_exact(conn, length)
                if body is None:
                    return
                msg = codec.decode(body)
                if msg.msg_type == BATCH:
                    # Coalesced frame: split at the receiving side and
                    # route each sub-message to its own endpoint (the
                    # address book is process-local), so handlers never
                    # see BATCH itself.
                    for sub in split_batch(msg):
                        self.transport._dispatch_local(sub)
                    continue
                # Serialize handler invocations per endpoint so engine
                # state sees the same one-at-a-time semantics as in sim.
                with self.handler_lock:
                    if not self.ep.closed:
                        self.ep.handler(msg)
        except (OSError, TransportError):
            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def stop(self) -> None:
        self.running = False
        try:
            self.sock.close()
        except OSError:
            pass


class TcpTransport(Transport):
    """Localhost TCP backend with a process-local address book."""

    def __init__(self, time_scale: float = 1000.0) -> None:
        """``time_scale``: transport time units per wall-clock second.

        The default (1000) makes one time unit ~= 1 ms, so trigger
        expressions like ``t > 1500`` mean "after 1.5 s" on TCP while
        being pure numbers in simulation.
        """
        super().__init__()
        self.codec = JsonCodec()
        self.time_scale = time_scale
        self._t0 = time.monotonic()
        self._listeners: Dict[str, _Listener] = {}
        # (src, dst) -> (socket, port it was connected to); the port is
        # compared against the live listener so a re-bound endpoint
        # (new port) forces a fresh connection.
        self._conns: Dict[Tuple[str, str], Tuple[socket.socket, int]] = {}
        self._conn_lock = threading.Lock()
        self._timers: List[threading.Timer] = []
        self._closed = False

    # -- Transport hooks --------------------------------------------------
    def _on_bind(self, ep: Endpoint) -> None:
        self._listeners[ep.address] = _Listener(self, ep)

    def _on_unbind(self, ep: Endpoint) -> None:
        listener = self._listeners.pop(ep.address, None)
        if listener is not None:
            listener.stop()

    def port_of(self, address: str) -> int:
        listener = self._listeners.get(address)
        if listener is None:
            raise TransportError(f"no listener for address {address}")
        return listener.port

    def _dispatch_local(self, msg: Message) -> None:
        """Deliver a split-out batch sub-message to its own endpoint.

        Uses the destination endpoint's handler lock so the sub-message
        sees the same one-at-a-time handler semantics as a message that
        arrived on its own socket.
        """
        listener = self._listeners.get(msg.dst)
        if listener is None or listener.ep.closed:
            self.stats.record_drop(msg)
            return
        with listener.handler_lock:
            if not listener.ep.closed:
                listener.ep.handler(msg)

    # -- Transport API --------------------------------------------------------
    def send(self, msg: Message) -> None:
        if self._closed:
            raise TransportError("transport closed")
        t0 = time.perf_counter_ns()
        raw = self.codec.encode(msg)
        # Measure the frame directly: send() runs concurrently from
        # listener/timer/CM threads, and the codec's last_encoded_size
        # is a shared attribute a racing encode can overwrite between
        # our encode and the read — the length prefix would then
        # disagree with the payload and corrupt stream framing.
        size = len(raw)
        self.stats.record_encode(size, time.perf_counter_ns() - t0)
        self.stats.record(msg, size=size)
        listener = self._listeners.get(msg.dst)
        if listener is None:
            # Same semantics as sim: message to a vanished endpoint is lost.
            self.stats.record_drop(msg)
            return
        frame = _LEN.pack(size) + raw
        # A cached connection may have died (peer endpoint was closed
        # and re-bound); reconnect once before giving up.
        for attempt in (1, 2):
            listener = self._listeners.get(msg.dst)
            if listener is None:
                self.stats.record_drop(msg)
                return
            sock = self._connection(msg.src, msg.dst, listener.port)
            try:
                with self._conn_lock:
                    sock.sendall(frame)
                return
            except OSError as exc:
                self._drop_connection(msg.src, msg.dst)
                if attempt == 2:
                    raise TransportError(f"send failed {msg}: {exc}") from exc

    def _connection(self, src: str, dst: str, port: int) -> socket.socket:
        key = (src, dst)
        with self._conn_lock:
            cached = self._conns.get(key)
            if cached is not None:
                sock, cached_port = cached
                if cached_port == port:
                    return sock
                try:
                    sock.close()  # listener was re-bound on a new port
                except OSError:
                    pass
                del self._conns[key]
            sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._conns[key] = (sock, port)
            return sock

    def _drop_connection(self, src: str, dst: str) -> None:
        with self._conn_lock:
            cached = self._conns.pop((src, dst), None)
        if cached is not None:
            try:
                cached[0].close()
            except OSError:
                pass

    def now(self) -> float:
        return (time.monotonic() - self._t0) * self.time_scale

    def schedule(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        timer = threading.Timer(delay / self.time_scale, fn)
        timer.daemon = True
        timer.start()
        self._timers.append(timer)
        return TimerHandle(timer.cancel)

    def completion(self, name: str = "") -> ThreadCompletion:
        return ThreadCompletion(name)

    def close(self) -> None:
        self._closed = True
        for t in self._timers:
            t.cancel()
        super().close()  # closes endpoints -> stops listeners
        with self._conn_lock:
            for sock, _port in self._conns.values():
                try:
                    sock.close()
                except OSError:
                    pass
            self._conns.clear()
