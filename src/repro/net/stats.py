"""Message accounting — the paper's efficiency metric.

Figure 4 of the paper compares coherence protocols by "the number of
messages sent between the cache managers and the directory manager".
:class:`MessageStats` records every transport send, classified by
message type and (src, dst) pair, and supports snapshot/delta so an
experiment can count messages for one phase of a run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.net.message import BATCH, Message

# Reply types whose payload carries an object image (GRANT doubles as
# the acquire reply in the RW-semantics layer).  Spelled as literals to
# keep net/ independent of core/ message constants.
_IMAGE_REPLIES = frozenset({"INIT_DATA", "PULL_DATA", "GRANT"})


@dataclass
class StatsSnapshot:
    """Immutable view of counters at a point in time."""

    total: int
    by_type: Dict[str, int]
    by_pair: Dict[Tuple[str, str], int]
    bytes_sent: int
    bytes_by_type: Dict[str, int] = field(default_factory=dict)
    images_full: int = 0
    images_delta: int = 0
    cells_sent: int = 0
    cells_skipped: int = 0
    frames_compressed: int = 0
    frames_stored: int = 0
    bytes_saved_compression: int = 0

    def delta(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """Counters accumulated since ``earlier``."""
        return StatsSnapshot(
            total=self.total - earlier.total,
            by_type={
                k: v - earlier.by_type.get(k, 0)
                for k, v in self.by_type.items()
                if v - earlier.by_type.get(k, 0)
            },
            by_pair={
                k: v - earlier.by_pair.get(k, 0)
                for k, v in self.by_pair.items()
                if v - earlier.by_pair.get(k, 0)
            },
            bytes_sent=self.bytes_sent - earlier.bytes_sent,
            bytes_by_type={
                k: v - earlier.bytes_by_type.get(k, 0)
                for k, v in self.bytes_by_type.items()
                if v - earlier.bytes_by_type.get(k, 0)
            },
            images_full=self.images_full - earlier.images_full,
            images_delta=self.images_delta - earlier.images_delta,
            cells_sent=self.cells_sent - earlier.cells_sent,
            cells_skipped=self.cells_skipped - earlier.cells_skipped,
            frames_compressed=self.frames_compressed - earlier.frames_compressed,
            frames_stored=self.frames_stored - earlier.frames_stored,
            bytes_saved_compression=(
                self.bytes_saved_compression - earlier.bytes_saved_compression
            ),
        )


@dataclass
class MessageStats:
    """Mutable counters attached to a transport."""

    total: int = 0
    bytes_sent: int = 0
    by_type: Counter = field(default_factory=Counter)
    by_pair: Counter = field(default_factory=Counter)
    dropped: int = 0
    duplicated: int = 0
    # Codec hot-path instrumentation: frames encoded, cumulative wall
    # time spent in the encoder (ns), and the largest frame seen.
    encodes: int = 0
    encode_ns: int = 0
    max_message_bytes: int = 0
    # Round coalescing: BATCH frames sent, and how many sub-messages
    # rode inside them (each coalesced sub-message is one frame the
    # sender did NOT pay for separately).
    batches_sent: int = 0
    messages_coalesced: int = 0
    # Reliable-delivery sublayer (net/reliability.py): data frames
    # retransmitted after an ACK timeout, incoming frames suppressed as
    # duplicates by the receiver's dedup window, and ACK frames sent.
    # These live on the *reliable* transport's stats, so the logical
    # message counters above stay comparable to a raw-transport run.
    retransmits: int = 0
    duplicates_suppressed: int = 0
    acks_sent: int = 0
    # Wire-bytes accounting (delta synchronization): encoded bytes per
    # message type, image replies split into full snapshots vs deltas,
    # and the cells each image carried vs left off the wire.
    bytes_by_type: Counter = field(default_factory=Counter)
    images_full: int = 0
    images_delta: int = 0
    cells_sent: int = 0
    cells_skipped: int = 0
    # Adaptive per-frame compression (binary codec): frames shipped
    # compressed, frames stored raw while compression was enabled
    # (below the size threshold, or the sample did not shrink), and the
    # cumulative body bytes the compressed frames saved.
    frames_compressed: int = 0
    frames_stored: int = 0
    bytes_saved_compression: int = 0
    # Event-loop transport (net/aio_transport.py): peak depth any
    # bounded per-link send queue ever reached (a gauge — merge keeps
    # the max), frames that rode another frame's flush instead of
    # paying for their own drain, and sends refused because the
    # bounded queue was at its high-water mark (the refusal surfaces
    # as a TransportError, which pushes back into ReliableTransport's
    # retransmit path instead of buffering unboundedly).
    send_queue_hwm: int = 0
    flushes_coalesced: int = 0
    backpressure_stalls: int = 0
    # Durable directory plane (core/durability.py): crash-restart
    # recoveries performed by directory managers on this transport, and
    # the primary-copy cells restored from snapshot + WAL replay.
    recoveries: int = 0
    cells_replayed: int = 0
    # Conflict-aware round scheduler (core/directory.py): peak number
    # of directory rounds ever in flight simultaneously (a gauge —
    # merge keeps the max).  Stays 1 on a serial (concurrent_rounds=1)
    # directory and 0 when no round ever started.
    concurrent_rounds_hwm: int = 0
    # Directory op-path profiling (core/profiling.py): cumulative time
    # and sample count per op phase, mirrored here by DirectoryProfiler
    # so phase totals ride the same merge/summary pipeline as message
    # counters.  Empty unless a directory runs with profile=True.
    op_phase_ns: Counter = field(default_factory=Counter)
    op_phase_count: Counter = field(default_factory=Counter)

    def record(self, msg: Message, size: Optional[int] = None) -> None:
        """Count one sent message (``size`` in bytes when known)."""
        self.total += 1
        self.by_type[msg.msg_type] += 1
        self.by_pair[(msg.src, msg.dst)] += 1
        if msg.msg_type == BATCH:
            self.batches_sent += 1
            self.messages_coalesced += len(msg.payload.get("messages", ()))
        elif msg.msg_type in _IMAGE_REPLIES:
            self._record_image(msg.payload.get("image"))
        if size is not None:
            self.bytes_sent += size
            self.bytes_by_type[msg.msg_type] += size
            if size > self.max_message_bytes:
                self.max_message_bytes = size

    def _record_image(self, img) -> None:
        """Classify one served image payload (duck-typed: a DeltaImage
        exposes ``complete``/``slice_size``, a plain ObjectImage does
        not and counts as a full snapshot)."""
        if img is None:
            return
        complete = getattr(img, "complete", None)
        carried = len(img)
        self.cells_sent += carried
        if complete is False:
            self.images_delta += 1
            self.cells_skipped += max(
                0, getattr(img, "slice_size", carried) - carried
            )
        else:
            self.images_full += 1

    def record_encode(self, size: int, duration_ns: int) -> None:
        """Account one codec ``encode`` call (size in bytes, time in ns)."""
        self.encodes += 1
        self.encode_ns += duration_ns
        if size > self.max_message_bytes:
            self.max_message_bytes = size

    @property
    def mean_encode_us(self) -> float:
        """Mean encoder latency in microseconds (0.0 before any encode)."""
        return (self.encode_ns / self.encodes) / 1000.0 if self.encodes else 0.0

    def record_drop(self, msg: Message) -> None:
        self.dropped += 1

    def record_duplicate(self, msg: Message) -> None:
        self.duplicated += 1

    def record_retransmit(self, msg: Message) -> None:
        self.retransmits += 1

    def record_duplicate_suppressed(self, msg: Message) -> None:
        self.duplicates_suppressed += 1

    def record_ack(self, msg: Message) -> None:
        self.acks_sent += 1

    def record_compression(self, saved: int) -> None:
        """Account one frame shipped compressed (``saved`` body bytes)."""
        self.frames_compressed += 1
        self.bytes_saved_compression += saved

    def record_stored(self) -> None:
        """Account one frame stored raw while compression was enabled."""
        self.frames_stored += 1

    def record_queue_depth(self, depth: int) -> None:
        """Track the peak depth of a bounded per-link send queue."""
        if depth > self.send_queue_hwm:
            self.send_queue_hwm = depth

    def record_coalesced_flush(self, extra_frames: int) -> None:
        """Account one multi-frame flush (``extra_frames`` = frames that
        shared the first frame's drain instead of paying for their own)."""
        self.flushes_coalesced += extra_frames

    def record_backpressure_stall(self) -> None:
        """Account one send refused on a full bounded send queue."""
        self.backpressure_stalls += 1

    def record_recovery(self, cells: int) -> None:
        """Account one directory crash-restart recovery (``cells`` =
        primary-copy cells restored from snapshot + WAL replay)."""
        self.recoveries += 1
        self.cells_replayed += cells

    def record_concurrent_rounds(self, depth: int) -> None:
        """Track the peak number of simultaneously running rounds."""
        if depth > self.concurrent_rounds_hwm:
            self.concurrent_rounds_hwm = depth

    def record_op_phase(self, phase: str, ns: int) -> None:
        """Account one profiled directory op phase (duration in ns)."""
        self.op_phase_ns[phase] += ns
        self.op_phase_count[phase] += 1

    def merge(self, other: "MessageStats") -> "MessageStats":
        """Fold ``other``'s counters into this one (returns ``self``).

        Sums every scalar counter and every per-type/per-pair dict —
        including ``bytes_by_type`` — and keeps the larger
        ``max_message_bytes``.  This is how per-shard stats roll up into
        one plane-wide view; callers previously hand-summed a subset.
        """
        self.total += other.total
        self.bytes_sent += other.bytes_sent
        self.by_type.update(other.by_type)
        self.by_pair.update(other.by_pair)
        self.bytes_by_type.update(other.bytes_by_type)
        self.dropped += other.dropped
        self.duplicated += other.duplicated
        self.encodes += other.encodes
        self.encode_ns += other.encode_ns
        self.max_message_bytes = max(
            self.max_message_bytes, other.max_message_bytes
        )
        self.batches_sent += other.batches_sent
        self.messages_coalesced += other.messages_coalesced
        self.retransmits += other.retransmits
        self.duplicates_suppressed += other.duplicates_suppressed
        self.acks_sent += other.acks_sent
        self.images_full += other.images_full
        self.images_delta += other.images_delta
        self.cells_sent += other.cells_sent
        self.cells_skipped += other.cells_skipped
        self.frames_compressed += other.frames_compressed
        self.frames_stored += other.frames_stored
        self.bytes_saved_compression += other.bytes_saved_compression
        # hwms are gauges: the merged peak is the larger of the two.
        self.send_queue_hwm = max(self.send_queue_hwm, other.send_queue_hwm)
        self.concurrent_rounds_hwm = max(
            self.concurrent_rounds_hwm, other.concurrent_rounds_hwm
        )
        self.flushes_coalesced += other.flushes_coalesced
        self.backpressure_stalls += other.backpressure_stalls
        self.recoveries += other.recoveries
        self.cells_replayed += other.cells_replayed
        self.op_phase_ns.update(other.op_phase_ns)
        self.op_phase_count.update(other.op_phase_count)
        return self

    def count_for_types(self, *msg_types: str) -> int:
        """Total messages across the given message types."""
        return sum(self.by_type[t] for t in msg_types)

    def count_involving(self, address: str) -> int:
        """Messages with ``address`` as either endpoint."""
        return sum(
            n for (src, dst), n in self.by_pair.items() if address in (src, dst)
        )

    def snapshot(self) -> StatsSnapshot:
        return StatsSnapshot(
            total=self.total,
            by_type=dict(self.by_type),
            by_pair=dict(self.by_pair),
            bytes_sent=self.bytes_sent,
            bytes_by_type=dict(self.bytes_by_type),
            images_full=self.images_full,
            images_delta=self.images_delta,
            cells_sent=self.cells_sent,
            cells_skipped=self.cells_skipped,
            frames_compressed=self.frames_compressed,
            frames_stored=self.frames_stored,
            bytes_saved_compression=self.bytes_saved_compression,
        )

    def reset(self) -> None:
        self.total = 0
        self.bytes_sent = 0
        self.dropped = 0
        self.duplicated = 0
        self.encodes = 0
        self.encode_ns = 0
        self.max_message_bytes = 0
        self.batches_sent = 0
        self.messages_coalesced = 0
        self.retransmits = 0
        self.duplicates_suppressed = 0
        self.acks_sent = 0
        self.images_full = 0
        self.images_delta = 0
        self.cells_sent = 0
        self.cells_skipped = 0
        self.frames_compressed = 0
        self.frames_stored = 0
        self.bytes_saved_compression = 0
        self.send_queue_hwm = 0
        self.concurrent_rounds_hwm = 0
        self.flushes_coalesced = 0
        self.backpressure_stalls = 0
        self.recoveries = 0
        self.cells_replayed = 0
        self.by_type.clear()
        self.by_pair.clear()
        self.bytes_by_type.clear()
        self.op_phase_ns.clear()
        self.op_phase_count.clear()

    def summary(self) -> str:
        """Human-readable one-block summary (used by experiment reports)."""
        lines = [f"total messages: {self.total}"]
        for t, n in sorted(self.by_type.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {t:<18} {n}")
        if self.dropped or self.duplicated:
            lines.append(f"  (dropped={self.dropped} duplicated={self.duplicated})")
        if self.batches_sent:
            lines.append(
                f"  (batches={self.batches_sent} "
                f"coalesced={self.messages_coalesced})"
            )
        if self.retransmits or self.duplicates_suppressed or self.acks_sent:
            lines.append(
                f"  (retransmits={self.retransmits} "
                f"dup_suppressed={self.duplicates_suppressed} "
                f"acks={self.acks_sent})"
            )
        if self.images_full or self.images_delta:
            lines.append(
                f"  (images: full={self.images_full} "
                f"delta={self.images_delta} cells_sent={self.cells_sent} "
                f"cells_skipped={self.cells_skipped})"
            )
        if self.frames_compressed or self.frames_stored:
            lines.append(
                f"  (compression: compressed={self.frames_compressed} "
                f"stored={self.frames_stored} "
                f"saved_bytes={self.bytes_saved_compression})"
            )
        if self.flushes_coalesced or self.backpressure_stalls or self.send_queue_hwm:
            lines.append(
                f"  (send queues: hwm={self.send_queue_hwm} "
                f"coalesced_flushes={self.flushes_coalesced} "
                f"stalls={self.backpressure_stalls})"
            )
        if self.recoveries:
            lines.append(
                f"  (durability: recoveries={self.recoveries} "
                f"cells_replayed={self.cells_replayed})"
            )
        if self.concurrent_rounds_hwm > 1:
            lines.append(
                f"  (scheduler: concurrent_rounds_hwm="
                f"{self.concurrent_rounds_hwm})"
            )
        if self.op_phase_count:
            for phase in sorted(self.op_phase_count):
                n = self.op_phase_count[phase]
                mean_us = (self.op_phase_ns[phase] / n) / 1000.0 if n else 0.0
                lines.append(
                    f"  (op phase {phase}: n={n} mean={mean_us:.1f}us)"
                )
        return "\n".join(lines)
