"""The PSF deployment module (paper §3.1, element iv).

"Once such a composition is found, the deployment module securely
installs and connects the components in the network."

The deployer turns a :class:`~repro.psf.planning.DeploymentPlan` into
live objects: it calls an application-provided *factory* per component
type, binds a transport address per instance, and — on the simulated
transport — places that address on the instance's topology node so
message latencies reflect the plan.  Flecc wiring (directory/cache
managers for view instances) is the application's job via the
``on_deploy`` hook; see ``repro.apps.airline.app_spec`` for the worked
example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import DeploymentError
from repro.net.sim_transport import SimTransport
from repro.net.transport import Transport
from repro.psf.planning import DeploymentPlan, Placement

# factory(placement) -> component instance (opaque to PSF)
Factory = Callable[[Placement], Any]
# on_deploy(instance, placement, address) -> None
DeployHook = Callable[[Any, Placement, str], None]


@dataclass
class DeployedInstance:
    placement: Placement
    instance: Any
    address: str


@dataclass
class DeployedApplication:
    """Live result of deploying one plan."""

    plan: DeploymentPlan
    instances: Dict[str, DeployedInstance] = field(default_factory=dict)

    def instance_of(self, instance_id: str) -> Any:
        try:
            return self.instances[instance_id].instance
        except KeyError:
            raise DeploymentError(f"not deployed: {instance_id!r}") from None

    def serving_instance_for(self, client_node: str) -> Any:
        iid = self.plan.client_bindings.get(client_node)
        if iid is None:
            raise DeploymentError(f"no binding for client at {client_node}")
        if iid in self.instances:
            return self.instances[iid].instance
        # After an incremental re-plan, unchanged instances keep their
        # original ids while the new plan names fresh ones; resolve by
        # placement shape instead.
        target = self.plan.placement_of(iid)
        for deployed in self.instances.values():
            p = deployed.placement
            if (p.type_name, p.node, p.serves_client) == (
                target.type_name, target.node, target.serves_client
            ):
                return deployed.instance
        raise DeploymentError(f"not deployed: {iid!r}")

    def by_type(self, type_name: str) -> List[DeployedInstance]:
        return [
            d for d in self.instances.values()
            if d.placement.type_name == type_name
        ]


class Deployer:
    """Instantiates plans onto a transport."""

    def __init__(
        self,
        transport: Transport,
        factories: Dict[str, Factory],
        on_deploy: Optional[DeployHook] = None,
    ) -> None:
        self.transport = transport
        self.factories = factories
        self.on_deploy = on_deploy

    def deploy(self, plan: DeploymentPlan) -> DeployedApplication:
        app = DeployedApplication(plan=plan)
        for placement in plan.all_placements():
            factory = self.factories.get(placement.type_name)
            if factory is None:
                raise DeploymentError(
                    f"no factory for component type {placement.type_name!r}"
                )
            instance = factory(placement)
            address = f"psf:{placement.instance_id}"
            if isinstance(self.transport, SimTransport) and self.transport.topology:
                if self.transport.topology.has_node(placement.node):
                    self.transport.place(address, placement.node)
            app.instances[placement.instance_id] = DeployedInstance(
                placement=placement, instance=instance, address=address
            )
            if self.on_deploy is not None:
                self.on_deploy(instance, placement, address)
        return app

    def undeploy(self, app: DeployedApplication, instance_id: str) -> None:
        deployed = app.instances.pop(instance_id, None)
        if deployed is None:
            raise DeploymentError(f"not deployed: {instance_id!r}")
        close = getattr(deployed.instance, "close", None)
        if callable(close):
            close()

    def apply_diff(
        self,
        app: DeployedApplication,
        diff: Dict[str, List[Placement]],
        new_plan: Optional["DeploymentPlan"] = None,
    ) -> DeployedApplication:
        """Incrementally apply a :func:`~repro.psf.planning.diff_plans`
        result: instantiate the added placements, undeploy the removed
        ones (matched by shape), and adopt ``new_plan``'s client
        bindings when provided.  The running instances are untouched.
        """
        def shape(p: Placement):
            return (p.type_name, p.node, p.serves_client)

        for removed in diff.get("remove", []):
            victim = next(
                (
                    iid
                    for iid, d in app.instances.items()
                    if shape(d.placement) == shape(removed)
                ),
                None,
            )
            if victim is None:
                raise DeploymentError(
                    f"cannot remove {removed.type_name} on {removed.node}: "
                    "no matching deployed instance"
                )
            self.undeploy(app, victim)
        for placement in diff.get("add", []):
            factory = self.factories.get(placement.type_name)
            if factory is None:
                raise DeploymentError(
                    f"no factory for component type {placement.type_name!r}"
                )
            instance = factory(placement)
            address = f"psf:{placement.instance_id}"
            if isinstance(self.transport, SimTransport) and self.transport.topology:
                if self.transport.topology.has_node(placement.node):
                    self.transport.place(address, placement.node)
            app.instances[placement.instance_id] = DeployedInstance(
                placement=placement, instance=instance, address=address
            )
            if self.on_deploy is not None:
                self.on_deploy(instance, placement, address)
        if new_plan is not None:
            app.plan = new_plan
        return app
