"""Generic remote method invocation — the PROXY view runtime.

A PROXY view (§3.2) gives a user "remote access to an original
component": every method call crosses the network.  This module is the
CORBA-flavored substrate that makes any Python component remotely
callable over a :class:`~repro.net.transport.Transport`:

- :func:`expose` publishes an object's whitelisted methods at an
  address (the whitelist is naturally the view type's ``functions``
  set, so access control carries over);
- :class:`RemoteStub` is the client-side proxy: ``stub.call(name,
  *args)`` returns a Completion with the result, or raises the remote
  exception by type name.

Arguments and results must be wire-encodable (plain JSON values or
codec-registered types) — the same rule every Flecc payload obeys.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable

from repro.errors import ReproError
from repro.net.message import Message
from repro.net.transport import Completion, Transport

CALL = "RMI_CALL"
RESULT = "RMI_RESULT"
FAULT = "RMI_FAULT"


class RemoteCallError(ReproError):
    """The remote side raised; carries the remote type name + message."""

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message


class ComponentServer:
    """Serves whitelisted method calls on one object."""

    def __init__(
        self,
        transport: Transport,
        address: str,
        target: Any,
        methods: Iterable[str],
    ) -> None:
        self.transport = transport
        self.address = address
        self.target = target
        self.methods = frozenset(methods)
        if not self.methods:
            raise ReproError("expose() needs at least one method")
        for name in self.methods:
            if not callable(getattr(target, name, None)):
                raise ReproError(
                    f"{type(target).__name__} has no callable {name!r} to expose"
                )
        self.calls_served = 0
        self._lock = threading.RLock()
        self.endpoint = transport.bind(address, self._on_message)

    def _on_message(self, msg: Message) -> None:
        if msg.msg_type != CALL:
            self.endpoint.send(
                msg.reply(FAULT, {"type": "ProtocolError",
                                  "message": f"unknown request {msg.msg_type}"})
            )
            return
        name = msg.payload.get("method")
        args = msg.payload.get("args", [])
        kwargs = msg.payload.get("kwargs", {})
        if name not in self.methods:
            self.endpoint.send(
                msg.reply(FAULT, {"type": "PermissionError",
                                  "message": f"method {name!r} is not exposed"})
            )
            return
        with self._lock:
            self.calls_served += 1
            try:
                result = getattr(self.target, name)(*args, **kwargs)
            except Exception as exc:  # faults cross the wire by name
                self.endpoint.send(
                    msg.reply(FAULT, {"type": type(exc).__name__,
                                      "message": str(exc)})
                )
                return
        self.endpoint.send(msg.reply(RESULT, {"value": result}))

    def close(self) -> None:
        self.endpoint.close()


def expose(
    transport: Transport, address: str, target: Any, methods: Iterable[str]
) -> ComponentServer:
    """Publish ``target``'s ``methods`` at ``address``."""
    return ComponentServer(transport, address, target, methods)


class RemoteStub:
    """Client-side proxy for a :class:`ComponentServer`."""

    def __init__(
        self,
        transport: Transport,
        client_address: str,
        server_address: str,
    ) -> None:
        self.transport = transport
        self.address = client_address
        self.server_address = server_address
        self._pending: Dict[int, Completion] = {}
        self._lock = threading.RLock()
        self.endpoint = transport.bind(client_address, self._on_message)

    def _on_message(self, msg: Message) -> None:
        with self._lock:
            comp = self._pending.pop(msg.reply_to, None)
        if comp is None:
            return
        if msg.msg_type == RESULT:
            comp.resolve(msg.payload.get("value"))
        elif msg.msg_type == FAULT:
            comp.fail(
                RemoteCallError(
                    msg.payload.get("type", "Error"),
                    msg.payload.get("message", ""),
                )
            )
        else:
            comp.fail(ReproError(f"unexpected reply {msg.msg_type}"))

    def call(self, method: str, *args: Any, **kwargs: Any) -> Completion:
        """Invoke a remote method; resolves to its return value."""
        msg = Message(
            CALL, self.address, self.server_address,
            {"method": method, "args": list(args), "kwargs": dict(kwargs)},
        )
        comp = self.transport.completion(f"{self.address}.{method}")
        with self._lock:
            self._pending[msg.msg_id] = comp
        self.endpoint.send(msg)
        return comp

    def __getattr__(self, name: str):
        """``stub.method(args)`` sugar for ``stub.call("method", args)``."""
        if name.startswith("_"):
            raise AttributeError(name)

        def invoke(*args: Any, **kwargs: Any) -> Completion:
            return self.call(name, *args, **kwargs)

        return invoke

    def close(self) -> None:
        self.endpoint.close()
