"""Credential-driven view selection (paper §3.2).

"One of the goals of PSF is to enable flexible access control to the
functionality provided by components.  Depending on their credentials,
users should be allowed to remotely access the components, run
components on their local machine, or access the components as a
combination of both remote and local execution."

The three access levels map onto the three view kinds:

- remote access only            -> PROXY view (no local data),
- combined remote/local         -> PARTIAL view,
- full local execution          -> CUSTOMIZATION view.

An :class:`AccessPolicy` holds ordered rules mapping credentials to the
most capable view kind a user may receive; :func:`select_view` derives
the concrete view type for a component under that policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ViewError
from repro.psf.component import ComponentType
from repro.psf.view import ViewKind, derive_view

# Capability order: a kind may substitute for anything at or below it.
_CAPABILITY_ORDER = {
    ViewKind.PROXY: 0,          # remote access only
    ViewKind.PARTIAL: 1,        # mixed local/remote
    ViewKind.CUSTOMIZATION: 2,  # full local execution
}


@dataclass(frozen=True)
class Credentials:
    """A user's identity attributes, as presented to PSF."""

    user: str
    roles: FrozenSet[str] = frozenset()
    trusted_host: bool = False

    @classmethod
    def make(cls, user: str, roles: Iterable[str] = (), trusted_host: bool = False):
        return cls(user=user, roles=frozenset(roles), trusted_host=trusted_host)

    def has_role(self, role: str) -> bool:
        return role in self.roles


@dataclass(frozen=True)
class AccessRule:
    """Grant up to ``max_kind`` when the credentials match.

    A rule matches when the user holds ``required_role`` (or the rule
    has none) and, if ``require_trusted_host``, the client machine is
    trusted.
    """

    max_kind: ViewKind
    required_role: Optional[str] = None
    require_trusted_host: bool = False

    def matches(self, credentials: Credentials) -> bool:
        if self.required_role is not None and not credentials.has_role(
            self.required_role
        ):
            return False
        if self.require_trusted_host and not credentials.trusted_host:
            return False
        return True


class AccessPolicy:
    """Ordered rules; the most capable matching grant wins.

    With no matching rule the user gets nothing — PSF denies rather
    than defaulting to remote access, so policies must grant explicitly
    (a PROXY-for-everyone rule is one line).
    """

    def __init__(self, rules: Iterable[AccessRule] = ()) -> None:
        self.rules: List[AccessRule] = list(rules)

    @classmethod
    def default_open(cls) -> "AccessPolicy":
        """Everyone gets remote access; trusted hosts may run locally."""
        return cls(
            [
                AccessRule(ViewKind.PROXY),
                AccessRule(ViewKind.CUSTOMIZATION, require_trusted_host=True),
            ]
        )

    def add_rule(self, rule: AccessRule) -> None:
        self.rules.append(rule)

    def allowed_kind(self, credentials: Credentials) -> Optional[ViewKind]:
        """The most capable view kind these credentials may receive."""
        best: Optional[ViewKind] = None
        for rule in self.rules:
            if not rule.matches(credentials):
                continue
            if best is None or _CAPABILITY_ORDER[rule.max_kind] > _CAPABILITY_ORDER[best]:
                best = rule.max_kind
        return best

    def permits(self, credentials: Credentials, kind: ViewKind) -> bool:
        best = self.allowed_kind(credentials)
        return best is not None and (
            _CAPABILITY_ORDER[kind] <= _CAPABILITY_ORDER[best]
        )


def select_view(
    component: ComponentType,
    credentials: Credentials,
    policy: AccessPolicy,
    partial_shape: Optional[Tuple[Iterable[str], Iterable[str]]] = None,
) -> ComponentType:
    """Derive the most capable view of ``component`` the user may hold.

    ``partial_shape`` supplies the (functions, variables) subsets used
    when the grant tops out at PARTIAL; by default a PARTIAL view keeps
    all functions but no local variables beyond the first (a thin mixed
    view).  Raises :class:`ViewError` when the policy denies access.
    """
    kind = policy.allowed_kind(credentials)
    if kind is None:
        raise ViewError(
            f"access denied: no policy rule grants {credentials.user!r} "
            f"a view of {component.name}"
        )
    name = f"{component.name}.{kind.value}.for.{credentials.user}"
    if kind is ViewKind.PARTIAL:
        if partial_shape is not None:
            functions, variables = partial_shape
        else:
            functions = sorted(component.functions)
            variables = sorted(component.variables)[:1]
        return derive_view(
            component, kind, name=name, functions=functions, variables=variables
        )
    return derive_view(component, kind, name=name)
