"""The PSF environment: nodes and links with properties (paper §3.1).

"The environment is defined as a set of nodes and links associated with
their own properties."

Wraps a :class:`~repro.net.topology.Topology` and adds the node
properties the planner consults: ``trusted`` (may host sensitive
components), ``capacity`` (how many component instances fit).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import PlanningError
from repro.net.topology import Topology


class Environment:
    """Topology + per-node hosting properties + occupancy tracking."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._occupancy: Dict[str, int] = {}

    # -- construction helpers -------------------------------------------------
    @classmethod
    def single_lan(
        cls, hosts: Iterable[str], latency: float = 0.5, capacity: int = 16
    ) -> "Environment":
        from repro.net.topology import lan_topology

        topo = lan_topology(hosts, latency=latency)
        env = cls(topo)
        for h in hosts:
            topo.graph.nodes[h]["trusted"] = True
            topo.graph.nodes[h]["capacity"] = capacity
        return env

    # -- node queries ------------------------------------------------------
    def hosts(self) -> List[str]:
        """Nodes that can run components (kind == 'host')."""
        return [
            n for n in self.topology.nodes()
            if self.topology.node_attrs(n).get("kind", "host") == "host"
        ]

    def is_trusted(self, node: str) -> bool:
        return bool(self.topology.node_attrs(node).get("trusted", False))

    def capacity_of(self, node: str) -> int:
        return int(self.topology.node_attrs(node).get("capacity", 1))

    def load_of(self, node: str) -> int:
        return self._occupancy.get(node, 0)

    def has_room(self, node: str) -> bool:
        return self.load_of(node) < self.capacity_of(node)

    def occupy(self, node: str) -> None:
        if not self.has_room(node):
            raise PlanningError(f"node {node} is at capacity")
        self._occupancy[node] = self.load_of(node) + 1

    def vacate(self, node: str) -> None:
        current = self.load_of(node)
        if current <= 0:
            raise PlanningError(f"vacate on empty node {node}")
        self._occupancy[node] = current - 1

    def reset_occupancy(self) -> None:
        self._occupancy.clear()

    # -- path queries ---------------------------------------------------------
    def latency(self, a: str, b: str) -> float:
        return self.topology.latency(a, b)

    def path(self, a: str, b: str) -> Tuple[float, List[str]]:
        return self.topology.path(a, b)

    def insecure_links_between(self, a: str, b: str) -> List[Tuple[str, str]]:
        return self.topology.insecure_links_on_path(a, b)

    def candidate_hosts(
        self, sensitive: bool = False, near: Optional[str] = None
    ) -> List[str]:
        """Hosts with room, trusted when required, sorted by distance to
        ``near`` (then by name, for determinism)."""
        hosts = [
            h for h in self.hosts()
            if self.has_room(h) and (not sensitive or self.is_trusted(h))
        ]
        if near is not None:
            hosts.sort(key=lambda h: (self.latency(near, h), h))
        else:
            hosts.sort()
        return hosts
