"""Partitionable Services Framework (PSF) substrate (paper §3.1).

PSF "relies on four elements: (i) a declarative specification of the
application and the environment, (ii) a monitoring module ..., (iii) a
planning module ..., and (iv) a deployment infrastructure."

This package implements those four elements plus PSF *views* (§3.2):

- :mod:`repro.psf.component` / :mod:`repro.psf.specification` — the
  declarative component & application model (implements/requires
  interfaces with properties).
- :mod:`repro.psf.environment` — nodes/links with properties, backed by
  :class:`repro.net.topology.Topology`.
- :mod:`repro.psf.monitoring` — change tracking and adaptation triggers.
- :mod:`repro.psf.planning` — QoS-driven placement (cache components
  near clients, encryptor/decryptor pairs around insecure links).
- :mod:`repro.psf.deployment` — instantiates a plan onto a transport.
- :mod:`repro.psf.view` — proxy/customization/partial views and the
  §3.2 view-of predicate.
- :mod:`repro.psf.access` — credential-driven view selection (§3.2's
  flexible access control).
"""

from repro.psf.component import ComponentType, Interface
from repro.psf.specification import ApplicationSpec
from repro.psf.environment import Environment
from repro.psf.qos import Operation, QoSRequirement
from repro.psf.view import ViewKind, derive_view, is_view_of
from repro.psf.access import AccessPolicy, AccessRule, Credentials, select_view
from repro.psf.planning import DeploymentPlan, Placement, Planner, diff_plans
from repro.psf.deployment import DeployedApplication, Deployer
from repro.psf.monitoring import ChangeEvent, Monitor

__all__ = [
    "ComponentType",
    "Interface",
    "ApplicationSpec",
    "Environment",
    "Operation",
    "QoSRequirement",
    "ViewKind",
    "derive_view",
    "is_view_of",
    "AccessPolicy",
    "AccessRule",
    "Credentials",
    "select_view",
    "DeploymentPlan",
    "Placement",
    "Planner",
    "diff_plans",
    "DeployedApplication",
    "Deployer",
    "ChangeEvent",
    "Monitor",
]
