"""The PSF component model (paper §3.1).

"Similar to the CORBA Component Model, PSF models components as
entities that *implement* and *require* interfaces, where each
interface can be associated with properties."

A :class:`ComponentType` additionally exposes its method set ``F_c``
and variable set ``V_c`` — the ingredients of the §3.2 view-of
predicate — and deployment attributes the planner consumes (mobility,
sensitivity, pinning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Optional

from repro.errors import ViewError


@dataclass(frozen=True)
class Interface:
    """A named interface with optional descriptive properties."""

    name: str
    properties: FrozenSet[tuple] = frozenset()

    @classmethod
    def make(cls, name: str, **properties: Any) -> "Interface":
        return cls(name, frozenset(properties.items()))

    def property_dict(self) -> Dict[str, Any]:
        return dict(self.properties)


@dataclass(frozen=True)
class ComponentType:
    """A deployable component type.

    Attributes:
        name: Unique type name.
        implements: Interfaces the component provides.
        requires: Interface *names* the component needs to run.
        functions: Method names (``F_c`` in §3.2).
        variables: Data variable names (``V_c`` in §3.2).
        mobile: May the planner replicate/move it (e.g. travel agents)?
        sensitive: Must it run on trusted nodes only (e.g. the database)?
        pinned_to: Fixed node name, when the application dictates one.
        view_of: Type name of the original component, for view types.
    """

    name: str
    implements: FrozenSet[Interface] = frozenset()
    requires: FrozenSet[str] = frozenset()
    functions: FrozenSet[str] = frozenset()
    variables: FrozenSet[str] = frozenset()
    mobile: bool = False
    sensitive: bool = False
    pinned_to: Optional[str] = None
    view_of: Optional[str] = None

    @classmethod
    def make(
        cls,
        name: str,
        implements: Iterable[Interface] = (),
        requires: Iterable[str] = (),
        functions: Iterable[str] = (),
        variables: Iterable[str] = (),
        mobile: bool = False,
        sensitive: bool = False,
        pinned_to: Optional[str] = None,
        view_of: Optional[str] = None,
    ) -> "ComponentType":
        if not name:
            raise ViewError("component type needs a non-empty name")
        return cls(
            name=name,
            implements=frozenset(implements),
            requires=frozenset(requires),
            functions=frozenset(functions),
            variables=frozenset(variables),
            mobile=mobile,
            sensitive=sensitive,
            pinned_to=pinned_to,
            view_of=view_of,
        )

    def implemented_names(self) -> FrozenSet[str]:
        return frozenset(i.name for i in self.implements)

    def provides(self, interface_name: str) -> bool:
        return interface_name in self.implemented_names()

    def is_view(self) -> bool:
        return self.view_of is not None
