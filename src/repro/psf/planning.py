"""The PSF planning module (paper §3.1, element iii).

"The planning module uses the information provided by the monitoring
module to find a valid component deployment that satisfies both the
application conditions and the client QoS requirements."

The planner implements the paper's two published adaptations:

1. **Latency**: "a cache component placed close to a client can offset
   high latency of slow links" — when the direct path to the service
   provider exceeds the client's budget and a mobile view type exists,
   the planner places a view instance at the client's nearest host.
2. **Privacy**: "the security requirements ... can be satisfied by
   placing encryption/decryption components around insecure links" —
   for each insecure link on a served path, an encryptor goes on the
   near side and a decryptor on the far side.

Plans are deterministic: same spec + environment + QoS -> same plan.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PlanningError
from repro.psf.component import ComponentType
from repro.psf.environment import Environment
from repro.psf.qos import QoSRequirement
from repro.psf.specification import ApplicationSpec


@dataclass(frozen=True)
class Placement:
    """One component instance pinned to one node."""

    instance_id: str
    type_name: str
    node: str
    serves_client: Optional[str] = None  # client node, for view instances


@dataclass(frozen=True)
class CodecPair:
    """Encryptor/decryptor instances guarding one insecure link."""

    link: Tuple[str, str]
    encryptor: Placement
    decryptor: Placement


@dataclass
class DeploymentPlan:
    """The planner's output: placements + codec pairs + the route map."""

    app_name: str
    placements: List[Placement] = field(default_factory=list)
    codec_pairs: List[CodecPair] = field(default_factory=list)
    # client node -> instance_id serving it
    client_bindings: Dict[str, str] = field(default_factory=dict)
    estimated_latency: Dict[str, float] = field(default_factory=dict)

    def placement_of(self, instance_id: str) -> Placement:
        for p in self.all_placements():
            if p.instance_id == instance_id:
                return p
        raise PlanningError(f"no placement for instance {instance_id!r}")

    def all_placements(self) -> List[Placement]:
        out = list(self.placements)
        for pair in self.codec_pairs:
            out.extend([pair.encryptor, pair.decryptor])
        return out

    def instances_of_type(self, type_name: str) -> List[Placement]:
        return [p for p in self.all_placements() if p.type_name == type_name]


class Planner:
    """Deterministic QoS-driven placement."""

    def __init__(self, spec: ApplicationSpec, environment: Environment) -> None:
        self.spec = spec
        self.environment = environment
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------
    def plan(self, clients: List[QoSRequirement]) -> DeploymentPlan:
        """Produce a deployment serving every client within its QoS."""
        env = self.environment
        env.reset_occupancy()
        plan = DeploymentPlan(app_name=self.spec.name)

        # 1. Pinned, non-view components (e.g. the flight database).
        anchors: Dict[str, Placement] = {}
        for ctype in sorted(self.spec.components.values(), key=lambda c: c.name):
            if ctype.is_view():
                continue
            if ctype.pinned_to is None:
                continue
            node = ctype.pinned_to
            self._check_hostable(ctype, node)
            env.occupy(node)
            placement = Placement(self._iid(ctype), ctype.name, node)
            plan.placements.append(placement)
            anchors[ctype.name] = placement

        # 2. Unpinned non-view providers, in dependency order (a
        #    component is placed after the providers of its required
        #    interfaces, and prefers a node close to them).
        for ctype in self._dependency_order():
            if ctype.is_view() or ctype.pinned_to is not None:
                continue
            if ctype.name in (self.spec.encryptor, self.spec.decryptor):
                continue  # codecs are injected on demand in step 4
            candidates = env.candidate_hosts(sensitive=ctype.sensitive)
            if not candidates:
                raise PlanningError(f"no host can run {ctype.name}")
            dep_nodes = self._dependency_nodes(ctype, anchors)
            if dep_nodes:
                # Closest host to the component's dependencies.
                node = min(
                    candidates,
                    key=lambda h: (
                        sum(env.latency(h, d) for d in dep_nodes), h
                    ),
                )
            else:
                node = max(
                    candidates,
                    key=lambda h: (env.capacity_of(h) - env.load_of(h), h),
                )
            env.occupy(node)
            placement = Placement(self._iid(ctype), ctype.name, node)
            plan.placements.append(placement)
            anchors[ctype.name] = placement

        # 3. Serve each client: direct if within budget, else a view
        #    placed near the client.
        providers = self.spec.service_providers()
        if not providers:
            raise PlanningError(f"{self.spec.name}: no service providers")
        for qos in clients:
            self._serve_client(plan, anchors, providers, qos)

        # 4. Privacy: codec pairs around insecure links on served paths.
        for qos in clients:
            if qos.privacy:
                self._secure_path(plan, qos)
        return plan

    # ------------------------------------------------------------------
    def _serve_client(
        self,
        plan: DeploymentPlan,
        anchors: Dict[str, Placement],
        providers: List[ComponentType],
        qos: QoSRequirement,
    ) -> None:
        env = self.environment
        # Nearest already-placed provider instance.
        placed = [
            (env.latency(qos.client_node, p.node), p)
            for p in plan.placements
            if self.spec.component(p.type_name).provides(self.spec.service_interface)
        ]
        placed.sort(key=lambda lp: (lp[0], lp[1].instance_id))
        if placed and placed[0][0] <= qos.max_latency:
            latency, provider = placed[0]
            plan.client_bindings[qos.client_node] = provider.instance_id
            plan.estimated_latency[qos.client_node] = latency
            return

        # Too far: deploy a mobile view near the client.
        view_types = [
            c for c in providers
            if c.is_view() and c.mobile
        ] or [
            v for p in providers for v in self.spec.views_of(p.name) if v.mobile
        ]
        if not view_types:
            raise PlanningError(
                f"client at {qos.client_node} needs latency "
                f"<= {qos.max_latency} but no mobile view type exists"
            )
        view_type = sorted(view_types, key=lambda c: c.name)[0]
        candidates = env.candidate_hosts(
            sensitive=view_type.sensitive, near=qos.client_node
        )
        if not candidates:
            raise PlanningError(f"no host near {qos.client_node} for {view_type.name}")
        node = candidates[0]
        latency = env.latency(qos.client_node, node)
        if latency > qos.max_latency:
            raise PlanningError(
                f"client at {qos.client_node}: best achievable latency "
                f"{latency} exceeds budget {qos.max_latency}"
            )
        env.occupy(node)
        placement = Placement(
            self._iid(view_type), view_type.name, node, serves_client=qos.client_node
        )
        plan.placements.append(placement)
        plan.client_bindings[qos.client_node] = placement.instance_id
        plan.estimated_latency[qos.client_node] = latency

    def _secure_path(self, plan: DeploymentPlan, qos: QoSRequirement) -> None:
        if self.spec.encryptor is None or self.spec.decryptor is None:
            raise PlanningError(
                f"{self.spec.name}: privacy requested but the spec declares "
                "no encryptor/decryptor component types"
            )
        serving = plan.placement_of(plan.client_bindings[qos.client_node])
        # Secure both segments: client <-> view, and view <-> original.
        segments = [(qos.client_node, serving.node)]
        view_type = self.spec.component(serving.type_name)
        if view_type.is_view():
            originals = plan.instances_of_type(view_type.view_of)
            if originals:
                segments.append((serving.node, originals[0].node))
        enc_t = self.spec.component(self.spec.encryptor)
        dec_t = self.spec.component(self.spec.decryptor)
        already = {pair.link for pair in plan.codec_pairs}
        for a, b in segments:
            for link in self.environment.insecure_links_between(a, b):
                norm = tuple(sorted(link))
                if norm in already:
                    continue
                already.add(norm)
                near, far = link
                plan.codec_pairs.append(
                    CodecPair(
                        link=norm,
                        encryptor=Placement(self._iid(enc_t), enc_t.name, near),
                        decryptor=Placement(self._iid(dec_t), dec_t.name, far),
                    )
                )

    def _dependency_order(self) -> List[ComponentType]:
        """Component types topologically sorted by required interfaces
        (providers first); cycles fall back to name order within the
        strongly-connected remainder."""
        types = sorted(self.spec.components.values(), key=lambda c: c.name)
        provider_of: Dict[str, List[str]] = {}
        for c in types:
            for i in c.implements:
                provider_of.setdefault(i.name, []).append(c.name)
        ordered: List[ComponentType] = []
        placed: set = set()
        remaining = list(types)
        while remaining:
            progressed = False
            for c in list(remaining):
                needed = {
                    p
                    for iface in c.requires
                    for p in provider_of.get(iface, [])
                    if p != c.name
                }
                if needed <= placed:
                    ordered.append(c)
                    placed.add(c.name)
                    remaining.remove(c)
                    progressed = True
            if not progressed:  # dependency cycle: take the rest as-is
                ordered.extend(remaining)
                break
        return ordered

    def _dependency_nodes(
        self, ctype: ComponentType, anchors: Dict[str, Placement]
    ) -> List[str]:
        """Nodes hosting providers of this component's required interfaces."""
        nodes = []
        for iface in sorted(ctype.requires):
            for provider in self.spec.providers_of(iface):
                placement = anchors.get(provider.name)
                if placement is not None:
                    nodes.append(placement.node)
        return nodes

    def _check_hostable(self, ctype: ComponentType, node: str) -> None:
        env = self.environment
        if not env.topology.has_node(node):
            raise PlanningError(f"{ctype.name} pinned to unknown node {node!r}")
        if ctype.sensitive and not env.is_trusted(node):
            raise PlanningError(
                f"sensitive component {ctype.name} pinned to untrusted node {node}"
            )
        if not env.has_room(node):
            raise PlanningError(f"node {node} is full; cannot host {ctype.name}")

    def _iid(self, ctype: ComponentType) -> str:
        return f"{ctype.name}#{next(self._counter)}"


def diff_plans(old: DeploymentPlan, new: DeploymentPlan) -> Dict[str, List[Placement]]:
    """What deployment must do to move from ``old`` to ``new``.

    Instances are compared by (type, node, serves_client) shape rather
    than instance id, so re-planning an unchanged world yields an empty
    diff.
    """
    def shape(p: Placement) -> Tuple[str, str, Optional[str]]:
        return (p.type_name, p.node, p.serves_client)

    old_shapes = {shape(p): p for p in old.all_placements()}
    new_shapes = {shape(p): p for p in new.all_placements()}
    return {
        "add": sorted(
            (p for s, p in new_shapes.items() if s not in old_shapes),
            key=lambda p: p.instance_id,
        ),
        "remove": sorted(
            (p for s, p in old_shapes.items() if s not in new_shapes),
            key=lambda p: p.instance_id,
        ),
    }
