"""Client QoS requirements (paper §5.1).

"The airline reservation system provides several levels of QoS for
clients, where each level is defined by the transaction privacy, the
maximum latency for accessing the database, and the type of operations
to be performed (e.g. browsing the database or buying the tickets)."
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.modes import Mode


class Operation(str, Enum):
    """The client's operation type, which implies consistency needs."""

    BROWSE = "browse"  # stale data acceptable -> weak consistency
    BUY = "buy"        # fresh data required   -> strong consistency

    @property
    def implied_mode(self) -> Mode:
        return Mode.WEAK if self is Operation.BROWSE else Mode.STRONG


@dataclass(frozen=True)
class QoSRequirement:
    """One client's service-level request.

    Attributes:
        client_node: Node where the client runs.
        max_latency: Budget for one client->service message (time units).
        privacy: Must traffic over insecure links be encrypted?
        operation: Browse or buy (drives the consistency mode).
    """

    client_node: str
    max_latency: float = float("inf")
    privacy: bool = False
    operation: Operation = Operation.BROWSE

    def with_operation(self, operation: Operation | str) -> "QoSRequirement":
        """The same client switching between browse and buy (paper §1)."""
        return QoSRequirement(
            client_node=self.client_node,
            max_latency=self.max_latency,
            privacy=self.privacy,
            operation=Operation(operation),
        )
