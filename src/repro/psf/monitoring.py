"""The PSF monitoring module (paper §3.1, element ii).

"The monitoring module is responsible for tracking any changes in the
state of the environment (e.g. client, network) and trigger
adaptation."

The monitor is the single mutation point for environment state: code
that changes a link latency or a node attribute does it through the
monitor, which records the change and notifies subscribers (typically
an adaptation loop that re-plans and diffs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.psf.environment import Environment


@dataclass(frozen=True)
class ChangeEvent:
    """One observed environment change."""

    kind: str                      # 'link' | 'node' | 'client'
    subject: Tuple[str, ...]       # (a, b) for links, (node,) for nodes
    attribute: str
    old_value: Any
    new_value: Any


Subscriber = Callable[[ChangeEvent], None]


class Monitor:
    """Environment change tracker + publisher."""

    def __init__(self, environment: Environment) -> None:
        self.environment = environment
        self._subscribers: List[Subscriber] = []
        self.history: List[ChangeEvent] = []

    def subscribe(self, fn: Subscriber) -> Callable[[], None]:
        """Register a callback; returns an unsubscribe function."""
        self._subscribers.append(fn)

        def unsubscribe() -> None:
            if fn in self._subscribers:
                self._subscribers.remove(fn)

        return unsubscribe

    # -- mutations ---------------------------------------------------------
    def set_link_attr(self, a: str, b: str, attribute: str, value: Any) -> None:
        g = self.environment.topology.graph
        old = g.edges[a, b].get(attribute)
        if old == value:
            return
        g.edges[a, b][attribute] = value
        # Latency changes invalidate cached shortest paths.
        self.environment.topology._path_cache.clear()
        self._publish(ChangeEvent("link", (a, b), attribute, old, value))

    def set_node_attr(self, node: str, attribute: str, value: Any) -> None:
        g = self.environment.topology.graph
        old = g.nodes[node].get(attribute)
        if old == value:
            return
        g.nodes[node][attribute] = value
        self._publish(ChangeEvent("node", (node,), attribute, old, value))

    def client_change(self, client_node: str, attribute: str, old: Any, new: Any) -> None:
        """Report a client-side change (e.g. operation browse -> buy)."""
        self._publish(ChangeEvent("client", (client_node,), attribute, old, new))

    def _publish(self, event: ChangeEvent) -> None:
        self.history.append(event)
        for fn in list(self._subscribers):
            fn(event)


class AdaptationLoop:
    """Monitor -> planner -> plan diff, the PSF adaptation cycle.

    On every change event the loop re-plans and reports the placement
    diff to its ``on_adapt`` callback.  (Deployment of the diff is the
    deployer's job; experiments often only inspect the diff.)
    """

    def __init__(
        self,
        monitor: Monitor,
        planner: "Planner",
        clients: List["QoSRequirement"],
        on_adapt: Optional[Callable[[Dict[str, list]], None]] = None,
    ) -> None:
        from repro.psf.planning import Planner  # noqa: F401 (typing aid)

        self.monitor = monitor
        self.planner = planner
        self.clients = list(clients)
        self.on_adapt = on_adapt
        self.current_plan = planner.plan(self.clients)
        self.adaptations: List[Dict[str, list]] = []
        self._unsubscribe = monitor.subscribe(self._on_change)

    def _on_change(self, event: ChangeEvent) -> None:
        from repro.psf.planning import diff_plans

        new_plan = self.planner.plan(self.clients)
        diff = diff_plans(self.current_plan, new_plan)
        if diff["add"] or diff["remove"]:
            self.adaptations.append(diff)
            self.current_plan = new_plan
            if self.on_adapt is not None:
                self.on_adapt(diff)

    def update_clients(self, clients: List["QoSRequirement"]) -> None:
        """Client QoS changed (e.g. viewer became buyer): re-plan."""
        self.clients = list(clients)
        self._on_change(
            ChangeEvent("client", ("*",), "qos", None, None)
        )

    def stop(self) -> None:
        self._unsubscribe()
