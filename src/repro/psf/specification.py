"""Declarative application specification (paper §3.1, element i).

An :class:`ApplicationSpec` names the component types of an
application, which interface clients consume (the *service interface*),
and which types are standard infrastructure codecs (encryptor/
decryptor) the planner may inject.  The spec is pure data — planning
and deployment interpret it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import PlanningError
from repro.psf.component import ComponentType


@dataclass
class ApplicationSpec:
    """The declarative description PSF plans and deploys from."""

    name: str
    components: Dict[str, ComponentType] = field(default_factory=dict)
    service_interface: Optional[str] = None
    encryptor: Optional[str] = None
    decryptor: Optional[str] = None

    @classmethod
    def build(
        cls,
        name: str,
        components: Iterable[ComponentType],
        service_interface: str,
        encryptor: Optional[str] = None,
        decryptor: Optional[str] = None,
    ) -> "ApplicationSpec":
        spec = cls(
            name=name,
            components={c.name: c for c in components},
            service_interface=service_interface,
            encryptor=encryptor,
            decryptor=decryptor,
        )
        spec.validate()
        return spec

    # -- queries ---------------------------------------------------------------
    def component(self, type_name: str) -> ComponentType:
        try:
            return self.components[type_name]
        except KeyError:
            raise PlanningError(f"unknown component type {type_name!r}") from None

    def providers_of(self, interface_name: str) -> List[ComponentType]:
        return sorted(
            (c for c in self.components.values() if c.provides(interface_name)),
            key=lambda c: c.name,
        )

    def views_of(self, type_name: str) -> List[ComponentType]:
        return sorted(
            (c for c in self.components.values() if c.view_of == type_name),
            key=lambda c: c.name,
        )

    def service_providers(self) -> List[ComponentType]:
        if self.service_interface is None:
            raise PlanningError(f"{self.name}: no service interface declared")
        return self.providers_of(self.service_interface)

    # -- validation --------------------------------------------------------------
    def validate(self) -> None:
        """Static sanity checks on the spec (raises PlanningError)."""
        if self.service_interface is not None and not self.providers_of(
            self.service_interface
        ):
            raise PlanningError(
                f"{self.name}: nothing implements service interface "
                f"{self.service_interface!r}"
            )
        implemented = {
            i.name for c in self.components.values() for i in c.implements
        }
        for c in self.components.values():
            missing = c.requires - implemented
            if missing:
                raise PlanningError(
                    f"{self.name}: component {c.name} requires unimplemented "
                    f"interfaces {sorted(missing)}"
                )
            if c.view_of is not None and c.view_of not in self.components:
                raise PlanningError(
                    f"{self.name}: {c.name} is a view of unknown {c.view_of!r}"
                )
        for codec_attr in ("encryptor", "decryptor"):
            codec = getattr(self, codec_attr)
            if codec is not None and codec not in self.components:
                raise PlanningError(
                    f"{self.name}: {codec_attr} {codec!r} not a component type"
                )
