"""PSF views (paper §3.2).

"A new component v is a *view* of an original component c if the view
has at least one of the following two properties: (i) the functionality
of the view is derived from the functionality of the component, i.e.
F_v ∩ F_c ≠ ∅, and (ii) the data used by the view is a subset of the
data used by the component, i.e. V_v ∩ V_c ≠ ∅."

Three view shapes (informally, from §3.2):

- **PROXY**: remote access to the original — all functions, no local
  data.
- **CUSTOMIZATION**: safely executable locally — a subset of functions
  and of data.
- **PARTIAL**: some parts local, others remote — arbitrary non-empty
  subsets of both.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Optional

from repro.errors import ViewError
from repro.psf.component import ComponentType


class ViewKind(str, Enum):
    PROXY = "proxy"
    CUSTOMIZATION = "customization"
    PARTIAL = "partial"


def is_view_of(view: ComponentType, component: ComponentType) -> bool:
    """The §3.2 predicate: shared functionality or shared data."""
    return bool(view.functions & component.functions) or bool(
        view.variables & component.variables
    )


def derive_view(
    component: ComponentType,
    kind: ViewKind,
    name: Optional[str] = None,
    functions: Optional[Iterable[str]] = None,
    variables: Optional[Iterable[str]] = None,
) -> ComponentType:
    """Create a view type of ``component`` with the given shape.

    ``functions``/``variables`` default per kind: a PROXY exposes every
    function and holds no data; a CUSTOMIZATION defaults to everything
    (caller usually narrows it); PARTIAL requires explicit subsets.
    Subsets are validated against ``F_c`` / ``V_c``.
    """
    kind = ViewKind(kind)
    if kind is ViewKind.PROXY:
        fns = frozenset(component.functions) if functions is None else frozenset(functions)
        vars_ = frozenset() if variables is None else frozenset(variables)
    elif kind is ViewKind.CUSTOMIZATION:
        fns = frozenset(component.functions) if functions is None else frozenset(functions)
        vars_ = frozenset(component.variables) if variables is None else frozenset(variables)
    else:  # PARTIAL
        if functions is None or variables is None:
            raise ViewError("PARTIAL views need explicit functions and variables")
        fns, vars_ = frozenset(functions), frozenset(variables)

    extra_f = fns - component.functions
    extra_v = vars_ - component.variables
    if extra_f:
        raise ViewError(f"view functions not in original: {sorted(extra_f)}")
    if extra_v:
        raise ViewError(f"view variables not in original: {sorted(extra_v)}")

    view = ComponentType.make(
        name=name or f"{component.name}.{kind.value}",
        implements=component.implements,
        requires=component.requires if kind is not ViewKind.PROXY else frozenset(),
        functions=fns,
        variables=vars_,
        mobile=True,  # views exist to be placed where the client needs them
        sensitive=False if kind is ViewKind.PROXY else component.sensitive,
        view_of=component.name,
    )
    if not is_view_of(view, component):
        raise ViewError(
            f"{view.name} shares neither functionality nor data with "
            f"{component.name}; not a view (paper §3.2)"
        )
    return view
