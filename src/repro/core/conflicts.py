"""Conflict detection: static map first, dynamic property intersection second.

Implements the decision procedure of paper §4.1: the static sharing map
answers for statically-known pairs (``0``/``1``); a ``-1`` cell defers
to the *dynamic set of data properties* — ``dynConfl`` (Definition 1).

Hot-path note (paper §4.1, Fig. 4): the static map exists precisely to
short-circuit repeated ``dynConfl`` computation.  :class:`ConflictPolicy`
extends that idea with a generation-stamped memoization cache — pairwise
answers and whole per-view conflict sets are remembered until the
directory reports a membership or property change via
:meth:`ConflictPolicy.invalidate`.  Registration events are rare
compared to ACQUIRE/PULL rounds, so a whole-cache generation bump on
each change keeps invalidation O(1) while the steady-state query cost
drops to a dict lookup.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.property_set import PropertySet
from repro.core.static_map import Sharing, StaticSharingMap

# Above this many cached entries, an invalidation clears the dicts
# outright instead of leaving stale-generation tombstones behind.
_CACHE_SWEEP_LIMIT = 65536


def dyn_confl(p: PropertySet, q: PropertySet) -> int:
    """Definition 1: ``1`` if the property-set intersection is non-empty."""
    return 1 if p.conflicts_with(q) else 0


class ConflictPolicy:
    """Answers "do these two views share data?" for the directory manager.

    ``properties_of`` supplies the *current* property set of a view — the
    directory passes its live registry so run-time property changes
    (paper: "views ... can dynamically change the sets of shared data")
    are honored without re-wiring.

    Results are memoized per unordered pair and per conflict-set query.
    The owner of the live registry (the directory) must call
    :meth:`invalidate` whenever view membership, a view's properties, or
    a static-map cell changes; until then cached answers are authoritative.
    """

    def __init__(
        self,
        static_map: Optional[StaticSharingMap],
        properties_of: Callable[[str], Optional[PropertySet]],
    ) -> None:
        self.static_map = static_map
        self.properties_of = properties_of
        # Instrumentation for the ablation benches.  static_hits and
        # dynamic_evals count *cache misses only* (i.e. actual decision
        # work); repeated answers land in cache_hits instead.
        self.static_hits = 0
        self.dynamic_evals = 0
        self.cache_hits = 0
        # Generation-stamped memoization: entries tagged with an older
        # generation than the current one are treated as absent.
        self._generation = 0
        self._pair_cache: Dict[Tuple[str, str], Tuple[int, bool]] = {}
        self._set_cache: Dict[Tuple[str, Tuple[str, ...]], Tuple[int, List[str]]] = {}

    # -- cache control --------------------------------------------------
    def invalidate(self) -> None:
        """Drop all memoized answers (membership/property/map change)."""
        self._generation += 1
        if len(self._pair_cache) + len(self._set_cache) > _CACHE_SWEEP_LIMIT:
            self._pair_cache.clear()
            self._set_cache.clear()

    @property
    def generation(self) -> int:
        """Monotone counter of invalidations (exposed for tests/probes)."""
        return self._generation

    # -- queries --------------------------------------------------------
    def conflicts(self, a: str, b: str) -> bool:
        if a == b:
            return False
        key = (a, b) if a <= b else (b, a)
        hit = self._pair_cache.get(key)
        if hit is not None and hit[0] == self._generation:
            self.cache_hits += 1
            return hit[1]
        result = self._compute(a, b)
        self._pair_cache[key] = (self._generation, result)
        return result

    def _compute(self, a: str, b: str) -> bool:
        if self.static_map is not None:
            cell = self.static_map.get_if_present(a, b)
            if cell is not None and cell is not Sharing.DYNAMIC:
                self.static_hits += 1
                return cell is Sharing.SHARED
        self.dynamic_evals += 1
        p = self.properties_of(a)
        q = self.properties_of(b)
        if p is None or q is None:
            # Without property information Flecc must assume the worst
            # case (paper §4.1: "all views conflict").
            return True
        return p.conflicts_with(q)

    def conflict_set(self, view_id: str, candidates: Iterable[str]) -> List[str]:
        """All candidates (excluding ``view_id``) that conflict with it.

        Whole result lists are cached per ``(view_id, candidates)`` so
        the directory's repeated per-round recomputation collapses to a
        lookup between membership changes.
        """
        key = (view_id, tuple(candidates))
        hit = self._set_cache.get(key)
        if hit is not None and hit[0] == self._generation:
            self.cache_hits += 1
            return list(hit[1])
        result = [
            c for c in key[1] if c != view_id and self.conflicts(view_id, c)
        ]
        self._set_cache[key] = (self._generation, result)
        return list(result)
