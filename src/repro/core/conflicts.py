"""Conflict detection: static map first, dynamic property intersection second.

Implements the decision procedure of paper §4.1: the static sharing map
answers for statically-known pairs (``0``/``1``); a ``-1`` cell defers
to the *dynamic set of data properties* — ``dynConfl`` (Definition 1).

Hot-path note (paper §4.1, Fig. 4): the static map exists precisely to
short-circuit repeated ``dynConfl`` computation.  :class:`ConflictPolicy`
extends that idea with memoization in two flavors:

* **Legacy (indexed=False)** — generation-stamped caches: pairwise
  answers and whole per-view conflict sets are remembered until the
  directory reports *any* membership or property change via
  :meth:`ConflictPolicy.invalidate`, which bumps a single generation
  counter and so drops the whole cache.  Cheap to invalidate, but a
  churning fleet repays O(V) recomputation per view after every event,
  and the ``conflict_set`` cache key is a ``tuple(candidates)`` whose
  construction alone costs O(V) per query even on a hit.

* **Indexed (indexed=True)** — an incremental :class:`ConflictIndex`
  (property-key inverted index: property name / discrete value →
  posting list of views) supplies a view's conflict *candidates* in
  O(degree) instead of scanning the registry, and invalidation is
  *scoped*: a membership or property change for view ``v`` evicts only
  the cached pairs involving ``v`` and bumps a per-view membership
  stamp on ``v``'s index neighborhood (plus static-map partners), so
  unrelated views keep their cached conflict sets.  The per-view set
  cache is keyed by ``(generation, stamp)`` — an O(1) check, no tuple
  build.  The directory drives this through
  :meth:`ConflictPolicy.register_view` /
  :meth:`ConflictPolicy.unregister_view` /
  :meth:`ConflictPolicy.update_properties`.

Candidate lists from the index are a *superset* of the true conflict
set (postings over-approximate domain overlap; static SHARED partners
are unioned in); every candidate is confirmed with :meth:`conflicts`,
so answers are identical to brute force over the full registry.
"""

from __future__ import annotations

from typing import (
    Callable, Dict, Iterable, List, Optional, Set, Tuple,
)

from repro.core.property_set import PropertySet
from repro.core.static_map import Sharing, StaticSharingMap

# Above this many cached entries, an invalidation clears the dicts
# outright instead of leaving stale-generation tombstones behind.
_CACHE_SWEEP_LIMIT = 65536

_EMPTY_SET: frozenset = frozenset()


def dyn_confl(p: PropertySet, q: PropertySet) -> int:
    """Definition 1: ``1`` if the property-set intersection is non-empty."""
    return 1 if p.conflicts_with(q) else 0


class ConflictIndex:
    """Property-key inverted index: posting lists of views per key.

    A view with properties posts under each property *name*, and — for
    finite domains — under each ``(name, value)`` pair; properties with
    unenumerable domains (intervals) post under the name only and are
    additionally tracked in a per-name "unenumerable" list that every
    finite-domain query on that name must also consult.  A view with
    unknown (``None``) properties conflicts with everyone (paper §4.1
    worst case) and lands in the universal list.

    ``candidates_for`` returns every view whose postings *could*
    overlap the given properties — a superset of the views whose
    ``dynConfl`` is true, suitable for confirmation by the policy's
    pairwise check.
    """

    __slots__ = ("_by_name", "_by_value", "_unenum", "_universal", "_props")

    def __init__(self) -> None:
        self._by_name: Dict[str, Set[str]] = {}
        self._by_value: Dict[Tuple[str, object], Set[str]] = {}
        self._unenum: Dict[str, Set[str]] = {}
        self._universal: Set[str] = set()
        self._props: Dict[str, Optional[PropertySet]] = {}

    def __len__(self) -> int:
        return len(self._props)

    def __contains__(self, view_id: str) -> bool:
        return view_id in self._props

    def properties_of(self, view_id: str) -> Optional[PropertySet]:
        return self._props.get(view_id)

    def add(self, view_id: str, properties: Optional[PropertySet]) -> None:
        """(Re)index a view under its property keys."""
        if view_id in self._props:
            self.remove(view_id)
        self._props[view_id] = properties
        if properties is None:
            self._universal.add(view_id)
            return
        for name, keys in properties.index_keys():
            self._by_name.setdefault(name, set()).add(view_id)
            if keys is None:
                self._unenum.setdefault(name, set()).add(view_id)
            else:
                for v in keys:
                    self._by_value.setdefault((name, v), set()).add(view_id)

    def remove(self, view_id: str) -> None:
        """Drop a view's postings (no-op when it was never indexed)."""
        if view_id not in self._props:
            return
        properties = self._props.pop(view_id)
        if properties is None:
            self._universal.discard(view_id)
            return
        for name, keys in properties.index_keys():
            self._discard(self._by_name, name, view_id)
            if keys is None:
                self._discard(self._unenum, name, view_id)
            else:
                for v in keys:
                    self._discard(self._by_value, (name, v), view_id)

    @staticmethod
    def _discard(postings: Dict, key, view_id: str) -> None:
        views = postings.get(key)
        if views is not None:
            views.discard(view_id)
            if not views:
                del postings[key]

    def candidates_for(self, properties: Optional[PropertySet]) -> Set[str]:
        """Views whose postings overlap ``properties`` (a conflict superset)."""
        if properties is None:
            return set(self._props)
        out: Set[str] = set(self._universal)
        for name, keys in properties.index_keys():
            if keys is None:
                # Unenumerable domain: anyone on this name may overlap.
                out |= self._by_name.get(name, _EMPTY_SET)
            else:
                unenum = self._unenum.get(name)
                if unenum:
                    out |= unenum
                by_value = self._by_value
                for v in keys:
                    views = by_value.get((name, v))
                    if views:
                        out |= views
        return out

    def candidates(self, view_id: str) -> Set[str]:
        """Conflict candidates of a registered view (excluding itself)."""
        out = self.candidates_for(self._props.get(view_id))
        out.discard(view_id)
        return out

    def clear(self) -> None:
        self._by_name.clear()
        self._by_value.clear()
        self._unenum.clear()
        self._universal.clear()
        self._props.clear()


class ConflictPolicy:
    """Answers "do these two views share data?" for the directory manager.

    ``properties_of`` supplies the *current* property set of a view — the
    directory passes its live registry so run-time property changes
    (paper: "views ... can dynamically change the sets of shared data")
    are honored without re-wiring.

    Results are memoized per unordered pair and per conflict-set query.
    In legacy mode (``indexed=False``) the owner of the live registry
    must call :meth:`invalidate` on every membership/property/map
    change; in indexed mode it reports changes per view through
    :meth:`register_view` / :meth:`unregister_view` /
    :meth:`update_properties` and invalidation stays scoped to the
    changed view's conflict neighborhood.  :meth:`invalidate` always
    remains a correct (if blunt) fallback.
    """

    def __init__(
        self,
        static_map: Optional[StaticSharingMap],
        properties_of: Callable[[str], Optional[PropertySet]],
        indexed: bool = False,
    ) -> None:
        self.static_map = static_map
        self.properties_of = properties_of
        # Instrumentation for the ablation benches.  static_hits and
        # dynamic_evals count *cache misses only* (i.e. actual decision
        # work); repeated answers land in cache_hits instead.
        self.static_hits = 0
        self.dynamic_evals = 0
        self.cache_hits = 0
        # Indexed-mode instrumentation: candidates the inverted index
        # yielded (vs. full-registry scans), and membership events
        # absorbed without a whole-cache generation bump.
        self.index_candidates = 0
        self.scoped_invalidations = 0
        # Generation-stamped memoization: entries tagged with an older
        # generation than the current one are treated as absent.
        self._generation = 0
        self._pair_cache: Dict[Tuple[str, str], Tuple[int, bool]] = {}
        self._set_cache: Dict[Tuple[str, Tuple[str, ...]], Tuple[int, List[str]]] = {}
        # Incremental index + scoped-invalidation state (indexed mode).
        self.index: Optional[ConflictIndex] = ConflictIndex() if indexed else None
        # Per-view membership stamp: bumped whenever an event touches
        # the view's conflict neighborhood; the per-view set cache is
        # valid only while both the generation and the stamp match.
        self._stamps: Dict[str, int] = {}
        self._iset_cache: Dict[str, Tuple[int, int, List[str]]] = {}
        # Reverse index of cached pair keys per view, for O(cached-deg)
        # pair eviction when that view changes.
        self._pairs_of: Dict[str, Set[Tuple[str, str]]] = {}

    @property
    def indexed(self) -> bool:
        return self.index is not None

    # -- cache control --------------------------------------------------
    def invalidate(self) -> None:
        """Drop all memoized answers (membership/property/map change)."""
        self._generation += 1
        if (
            len(self._pair_cache) + len(self._set_cache) + len(self._iset_cache)
            > _CACHE_SWEEP_LIMIT
        ):
            self._pair_cache.clear()
            self._set_cache.clear()
            self._iset_cache.clear()
            self._pairs_of.clear()

    @property
    def generation(self) -> int:
        """Monotone counter of invalidations (exposed for tests/probes)."""
        return self._generation

    def stamp_of(self, view_id: str) -> int:
        """Membership stamp of a view (exposed for tests/probes)."""
        return self._stamps.get(view_id, 0)

    # -- scoped invalidation (indexed mode) -----------------------------
    def _bump(self, views: Iterable[str]) -> None:
        stamps = self._stamps
        for v in views:
            stamps[v] = stamps.get(v, 0) + 1

    def _evict_pairs(self, view_id: str) -> None:
        """Drop every cached pairwise answer involving ``view_id``."""
        pair_cache = self._pair_cache
        for key in self._pairs_of.pop(view_id, _EMPTY_SET):
            pair_cache.pop(key, None)

    def _static_partners(self, view_id: str) -> List[str]:
        """Views statically marked SHARED with ``view_id``.

        A SHARED cell makes the pair conflict regardless of property
        overlap, so these partners must be in the candidate set and
        must be stamp-bumped on register/unregister even when the
        inverted index sees no key overlap.  (DYNAMIC cells defer to
        ``dynConfl`` and are therefore covered by the index itself.)
        """
        sm = self.static_map
        if sm is None or not sm.has_view(view_id):
            return []
        return sm.statically_shared_with(view_id)

    def register_view(
        self, view_id: str, properties: Optional[PropertySet]
    ) -> None:
        """A view joined (or re-joined): index it, invalidate its scope."""
        if self.index is None:
            self.invalidate()
            return
        affected = self.index.candidates_for(properties)
        self.index.add(view_id, properties)
        affected.update(self._static_partners(view_id))
        affected.add(view_id)
        self._evict_pairs(view_id)
        self._iset_cache.pop(view_id, None)
        self._bump(affected)
        self.scoped_invalidations += 1

    def unregister_view(self, view_id: str) -> None:
        """A view left: drop its postings, invalidate its scope."""
        if self.index is None:
            self.invalidate()
            return
        affected = self.index.candidates(view_id)
        affected.update(self._static_partners(view_id))
        self.index.remove(view_id)
        self._evict_pairs(view_id)
        self._iset_cache.pop(view_id, None)
        self._stamps.pop(view_id, None)
        self._bump(affected)
        self.scoped_invalidations += 1

    def update_properties(
        self, view_id: str, properties: Optional[PropertySet]
    ) -> None:
        """A view's properties changed: re-index, invalidate old+new scope."""
        if self.index is None:
            self.invalidate()
            return
        affected = self.index.candidates(view_id)       # old neighborhood
        self.index.add(view_id, properties)             # drops old postings
        affected |= self.index.candidates(view_id)      # new neighborhood
        affected.add(view_id)
        self._evict_pairs(view_id)
        self._iset_cache.pop(view_id, None)
        self._bump(affected)
        self.scoped_invalidations += 1

    def invalidate_pair(self, a: str, b: str) -> None:
        """A static-map cell changed for one pair: scoped eviction."""
        if self.index is None:
            self.invalidate()
            return
        key = (a, b) if a <= b else (b, a)
        self._pair_cache.pop(key, None)
        self._bump((a, b))
        self.scoped_invalidations += 1

    def reset_index(
        self, props_by_view: Dict[str, Optional[PropertySet]]
    ) -> None:
        """Rebuild the index from scratch (directory recovery path)."""
        if self.index is not None:
            self.index.clear()
            for vid, props in props_by_view.items():
                self.index.add(vid, props)
        self.invalidate()

    # -- queries --------------------------------------------------------
    def conflicts(self, a: str, b: str) -> bool:
        if a == b:
            return False
        key = (a, b) if a <= b else (b, a)
        hit = self._pair_cache.get(key)
        if hit is not None and hit[0] == self._generation:
            self.cache_hits += 1
            return hit[1]
        result = self._compute(a, b)
        self._pair_cache[key] = (self._generation, result)
        if self.index is not None:
            # Reverse index so a later change to either view can evict
            # exactly this entry instead of bumping the generation.
            self._pairs_of.setdefault(a, set()).add(key)
            self._pairs_of.setdefault(b, set()).add(key)
        return result

    def _compute(self, a: str, b: str) -> bool:
        if self.static_map is not None:
            cell = self.static_map.get_if_present(a, b)
            if cell is not None and cell is not Sharing.DYNAMIC:
                self.static_hits += 1
                return cell is Sharing.SHARED
        self.dynamic_evals += 1
        p = self.properties_of(a)
        q = self.properties_of(b)
        if p is None or q is None:
            # Without property information Flecc must assume the worst
            # case (paper §4.1: "all views conflict").
            return True
        return p.conflicts_with(q)

    def conflict_set(
        self, view_id: str, candidates: Optional[Iterable[str]] = None
    ) -> List[str]:
        """All candidates (excluding ``view_id``) that conflict with it.

        With explicit ``candidates`` (legacy path) the result keeps the
        candidates' order and whole lists are cached per ``(view_id,
        tuple(candidates))`` — an O(V) key build per call.  With
        ``candidates=None`` (indexed mode only) candidates come from
        the inverted index, the result is name-sorted, and the cache
        key is the view's ``(generation, membership-stamp)`` pair — an
        O(1) hit between scoped invalidations.
        """
        if candidates is None:
            return self._indexed_conflict_set(view_id)
        key = (view_id, tuple(candidates))
        hit = self._set_cache.get(key)
        if hit is not None and hit[0] == self._generation:
            self.cache_hits += 1
            return list(hit[1])
        result = [
            c for c in key[1] if c != view_id and self.conflicts(view_id, c)
        ]
        self._set_cache[key] = (self._generation, result)
        return list(result)

    def op_scope(
        self, view_id: str, candidates: Optional[Iterable[str]] = None
    ) -> frozenset:
        """In-flight independence footprint of a round for ``view_id``.

        The scope is the view itself plus its whole conflict set —
        index candidates confirmed pairwise, static-SHARED partners,
        and therefore every exclusive holder or active view the round
        could target.  Two rounds may run concurrently iff their scopes
        are :meth:`independent` (disjoint): a round only ever sends to,
        or changes the activity of, views inside its own scope, and any
        view registering *after* a round started lands in the *new*
        op's freshly-computed scope, so disjointness remains sound
        against membership churn while a round is in flight.
        """
        return frozenset((view_id, *self.conflict_set(view_id, candidates)))

    @staticmethod
    def independent(scope_a: frozenset, scope_b: frozenset) -> bool:
        """May two in-flight rounds with these scopes overlap in time?"""
        return scope_a.isdisjoint(scope_b)

    def _indexed_conflict_set(self, view_id: str) -> List[str]:
        if self.index is None:
            raise ValueError(
                "conflict_set without candidates requires indexed=True"
            )
        stamp = self._stamps.get(view_id, 0)
        hit = self._iset_cache.get(view_id)
        if hit is not None and hit[0] == self._generation and hit[1] == stamp:
            self.cache_hits += 1
            return list(hit[2])
        cand = self.index.candidates(view_id)
        statics = self._static_partners(view_id)
        if statics:
            cand.update(statics)
            cand.discard(view_id)
        self.index_candidates += len(cand)
        result = sorted(c for c in cand if self.conflicts(view_id, c))
        self._iset_cache[view_id] = (self._generation, stamp, result)
        return list(result)
