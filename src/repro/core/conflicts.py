"""Conflict detection: static map first, dynamic property intersection second.

Implements the decision procedure of paper §4.1: the static sharing map
answers for statically-known pairs (``0``/``1``); a ``-1`` cell defers
to the *dynamic set of data properties* — ``dynConfl`` (Definition 1).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.core.property_set import PropertySet
from repro.core.static_map import Sharing, StaticSharingMap


def dyn_confl(p: PropertySet, q: PropertySet) -> int:
    """Definition 1: ``1`` if the property-set intersection is non-empty."""
    return 1 if p.conflicts_with(q) else 0


class ConflictPolicy:
    """Answers "do these two views share data?" for the directory manager.

    ``properties_of`` supplies the *current* property set of a view — the
    directory passes its live registry so run-time property changes
    (paper: "views ... can dynamically change the sets of shared data")
    are honored without re-wiring.
    """

    def __init__(
        self,
        static_map: Optional[StaticSharingMap],
        properties_of: Callable[[str], Optional[PropertySet]],
    ) -> None:
        self.static_map = static_map
        self.properties_of = properties_of
        # Instrumentation for the ablation benches.
        self.static_hits = 0
        self.dynamic_evals = 0

    def conflicts(self, a: str, b: str) -> bool:
        if a == b:
            return False
        if self.static_map is not None and self.static_map.has_view(a) and self.static_map.has_view(b):
            cell = self.static_map.get(a, b)
            if cell is not Sharing.DYNAMIC:
                self.static_hits += 1
                return cell is Sharing.SHARED
        self.dynamic_evals += 1
        p = self.properties_of(a)
        q = self.properties_of(b)
        if p is None or q is None:
            # Without property information Flecc must assume the worst
            # case (paper §4.1: "all views conflict").
            return True
        return dyn_confl(p, q) == 1

    def conflict_set(self, view_id: str, candidates: Iterable[str]) -> List[str]:
        """All candidates (excluding ``view_id``) that conflict with it."""
        return [c for c in candidates if c != view_id and self.conflicts(view_id, c)]
