"""The static sharing map (paper §4.1).

"Static relationships are specified into a static map ... a symmetric
matrix, where the number of rows and columns equal the number of views.
If two views v_i and v_j share data, then the elements (i, j) and
(j, i) ... are set to 1.  Otherwise ... 0.  The static matrix indicates
[a dynamically changing relationship] by setting the cell entry to -1."

The map is created once when Flecc initializes; views may be appended as
they register (growing the matrix), defaulting new cells to ``DYNAMIC``
so unknown pairs fall back to the property computation.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import PropertyError


class Sharing(IntEnum):
    """Cell values of the static map."""

    NONE = 0      # statically known: never share
    SHARED = 1    # statically known: always share
    DYNAMIC = -1  # decide at run time via dynConfl


class StaticSharingMap:
    """Symmetric view-by-view sharing matrix with named rows."""

    def __init__(self, view_ids: Iterable[str] = (), default: Sharing = Sharing.DYNAMIC):
        self._index: Dict[str, int] = {}
        self._default = Sharing(default)
        self._m = np.full((0, 0), int(self._default), dtype=np.int8)
        for v in view_ids:
            self.add_view(v)

    # -- structure ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def view_ids(self) -> List[str]:
        return sorted(self._index, key=self._index.__getitem__)

    def has_view(self, view_id: str) -> bool:
        return view_id in self._index

    def add_view(self, view_id: str) -> None:
        """Append a row/column for a newly registered view."""
        if view_id in self._index:
            raise PropertyError(f"view already in static map: {view_id}")
        n = len(self._index)
        self._index[view_id] = n
        grown = np.full((n + 1, n + 1), int(self._default), dtype=np.int8)
        grown[:n, :n] = self._m
        grown[n, n] = int(Sharing.NONE)  # a view never "shares" with itself
        self._m = grown

    def remove_view(self, view_id: str) -> None:
        if view_id not in self._index:
            raise PropertyError(f"view not in static map: {view_id}")
        i = self._index.pop(view_id)
        self._m = np.delete(np.delete(self._m, i, axis=0), i, axis=1)
        for v, j in list(self._index.items()):
            if j > i:
                self._index[v] = j - 1

    # -- cells ----------------------------------------------------------------
    def set(self, a: str, b: str, value: Sharing) -> None:
        """Set both (a,b) and (b,a) — the matrix stays symmetric."""
        i, j = self._pair(a, b)
        if i == j:
            raise PropertyError(f"cannot set self-sharing for {a}")
        self._m[i, j] = int(value)
        self._m[j, i] = int(value)

    def get(self, a: str, b: str) -> Sharing:
        i, j = self._pair(a, b)
        return Sharing(int(self._m[i, j]))

    def get_if_present(self, a: str, b: str) -> "Sharing | None":
        """Cell value, or ``None`` when either view is not in the map.

        Single index resolution per view — the conflict hot path uses
        this instead of ``has_view(a) and has_view(b)`` followed by
        ``get(a, b)``, which looked every view up twice.
        """
        i = self._index.get(a)
        if i is None:
            return None
        j = self._index.get(b)
        if j is None:
            return None
        return Sharing(int(self._m[i, j]))

    def _pair(self, a: str, b: str) -> Tuple[int, int]:
        try:
            return self._index[a], self._index[b]
        except KeyError as exc:
            raise PropertyError(f"view not in static map: {exc.args[0]}") from exc

    # -- invariants / views -------------------------------------------------------
    def is_symmetric(self) -> bool:
        return bool(np.array_equal(self._m, self._m.T))

    def statically_shared_with(self, view_id: str) -> List[str]:
        """Views whose cell against ``view_id`` is exactly SHARED."""
        i = self._index[view_id]
        ids = self.view_ids()
        return [v for v in ids if v != view_id and self._m[i, self._index[v]] == 1]

    def dynamic_pairs_of(self, view_id: str) -> List[str]:
        """Views whose relationship with ``view_id`` must be computed."""
        i = self._index[view_id]
        ids = self.view_ids()
        return [v for v in ids if v != view_id and self._m[i, self._index[v]] == -1]

    def as_array(self) -> np.ndarray:
        """Copy of the underlying matrix (row order = registration order)."""
        return self._m.copy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StaticSharingMap({self.view_ids()!r})"
