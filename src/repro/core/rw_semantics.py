"""Extension: read/write semantics on shared data (paper §6, direction 1).

"The cache coherence protocol does not currently use any information
about the nature of the methods executed on the shared data.  We
believe that the number of control messages can be further reduced by
attaching read/write semantics to the shared data."

This module implements that future-work direction: a view may annotate
``start_use_image`` with its access intent.  The RW-aware directory
then lets any number of conflicting **readers** hold the data
simultaneously in strong mode — only a **writer** needs to invalidate
the conflict set (and readers must be revoked when a writer arrives),
exactly the MESI-style sharing the paper hints at.

Usage::

    directory = RWDirectoryManager(...)     # instead of DirectoryManager
    cm = RWCacheManager(...)                # instead of CacheManager
    yield cm.start_use_image(access=Access.READ)

Everything else — properties, triggers, images — is unchanged.
"""

from __future__ import annotations

from enum import Enum
from repro.core import messages as M
from repro.core.cache_manager import CacheManager
from repro.core.directory import DirectoryManager, _PendingOp
from repro.core.modes import Mode
from repro.net.message import Message
from repro.net.transport import Completion


class Access(str, Enum):
    """A view's declared intent for the upcoming critical section."""

    READ = "read"
    WRITE = "write"

    @classmethod
    def parse(cls, value: "Access | str") -> "Access":
        if isinstance(value, Access):
            return value
        try:
            return cls(value.lower())
        except (AttributeError, ValueError):
            raise ValueError(f"unknown access {value!r}; use 'read' or 'write'") from None


class RWDirectoryManager(DirectoryManager):
    """Directory that distinguishes read sharers from the write owner.

    State extension: ``ViewRecord.exclusive`` keeps its meaning (write
    ownership); read sharers are tracked in ``read_sharers`` per view
    id.  Invariants: a write owner excludes all conflicting activity;
    read sharers may overlap each other but not a conflicting writer.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.read_sharers: set[str] = set()

    # -- acquisition ------------------------------------------------------
    def _h_acquire(self, msg: Message) -> None:
        rec = self._record_for(msg)
        access = Access.parse(msg.payload.get("access", Access.WRITE))
        op = _PendingOp("acquire", msg, rec.view_id)
        op.access = access  # type: ignore[attr-defined]
        self._enqueue(op)

    def _start_op(self, op: _PendingOp) -> None:
        access: Access = getattr(op, "access", Access.WRITE)
        if op.kind != "acquire" or access is Access.WRITE:
            # Writes (and pulls/inits) behave exactly as in the base
            # protocol, except a write must also flush read sharers.
            super()._start_op(op)
            return
        # READ acquire: only a conflicting *writer* must be revoked;
        # co-existing readers are fine (the message saving).  Writers
        # come from the maintained exclusive set — O(conflict degree).
        exclusive = self._exclusive_set
        targets = {
            v: M.INVALIDATE
            for v in self.conflict_set_of(op.view_id)
            if v in exclusive
        }
        for v, mtype in targets.items():
            out = Message(mtype, self.address, self.views[v].address,
                          {"view_id": v, "requested_by": op.view_id})
            op.awaiting[out.msg_id] = v
            self._round_ops[out.msg_id] = op
            self._send(out)
        if not op.awaiting:
            self._finalize_op(op)

    def _finalize_op(self, op: _PendingOp) -> None:
        access: Access = getattr(op, "access", Access.WRITE)
        if op.kind == "acquire" and access is Access.READ:
            # Serve like a pull (active but NOT exclusive), then mark
            # the view as a read sharer.
            op.kind = "pull"
            rec = self.views.get(op.view_id)
            super()._finalize_op(op)
            if rec is not None:
                self.read_sharers.add(op.view_id)
            return
        if op.kind == "acquire":
            # A write acquire revokes conflicting read sharers that the
            # base invalidation round already handled (they were
            # active); drop them from the sharer set.
            for v in self.conflict_set_of(op.view_id):
                self.read_sharers.discard(v)
        super()._finalize_op(op)

    def _h_unregister(self, msg: Message) -> None:
        view_id = msg.payload.get("view_id")
        if view_id is not None:
            self.read_sharers.discard(view_id)
        super()._h_unregister(msg)

    def _h_round_reply(self, msg: Message) -> None:
        # An invalidated view loses read-sharer status too.
        op = self._round_ops.get(msg.reply_to)
        if op is not None and msg.reply_to in op.awaiting:
            self.read_sharers.discard(op.awaiting[msg.reply_to])
        super()._h_round_reply(msg)

    def check_invariants(self) -> None:
        super().check_invariants()
        from repro.errors import ProtocolError

        for vid in self.read_sharers:
            if vid not in self.views:
                continue
            for other in self.conflict_set_of(vid):
                if other in self._exclusive_set:
                    raise ProtocolError(
                        f"rw violation: reader {vid} coexists with writer {other}"
                    )


class RWCacheManager(CacheManager):
    """Cache manager whose ``start_use_image`` takes an access intent.

    In STRONG mode:

    - ``WRITE`` behaves like the base protocol (exclusive acquire).
    - ``READ`` acquires shared (non-exclusive) access: fresh data is
      pulled, but conflicting readers are not invalidated — repeated
      reads by the sharer set cost no invalidation rounds.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.read_shared = False  # holding shared (read) access

    def start_use_image(self, access: Access | str = Access.WRITE) -> Completion:
        access = Access.parse(access)
        if self.mode is not Mode.STRONG or access is Access.WRITE:
            if access is Access.WRITE:
                self.read_shared = False
            return super().start_use_image()

        comp = self.transport.completion(f"{self.view_id}.start_use_read")

        def locked(_lk: Completion) -> None:
            if (self.read_shared or self.owner) and not self.invalidated:
                # Already a sharer — or the write owner, whose exclusive
                # access subsumes reading (a read ACQUIRE here would
                # pull the stale primary copy over our own uncommitted
                # writes): free local access.
                self._in_use = True
                comp.resolve(self)
                return
            self.counters["acquires"] += 1

            def fail_locked(exc: BaseException) -> None:
                self._use_lock.release()
                comp.fail(exc)

            def shared() -> None:
                self.read_shared = True
                self._in_use = True

            self._request_data(
                M.ACQUIRE, {"access": access.value},
                on_fail=fail_locked,
                on_done=lambda _img: comp.resolve(self),
                on_state=shared,
            )

        self._use_lock.acquire().then(locked)
        return comp

    def _complete_invalidate(self, msg: Message) -> None:
        self.read_shared = False
        super()._complete_invalidate(msg)
