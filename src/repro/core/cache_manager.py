"""The cache manager (paper §4.2) and its view-facing API (Fig 3).

One cache manager accompanies each deployed view.  It forwards view
requests to the directory manager, executes directory commands
(INVALIDATE, FETCH_REQ), evaluates quality triggers against the
transport clock and reflected view variables, and moves state in/out of
the view through the application's extract/merge functions.

The view-facing API mirrors the paper's Fig 3 listing::

    cm = CacheManager(...)            # (1) create cache manager
    cm.start().wait()                 #     register with the directory
    cm.init_image().wait()            # (2) initialize data
    cm.pull_image().wait()            # (3) work with data ...
    cm.start_use_image().wait()
    ...application method...
    cm.end_use_image()
    cm.push_image().wait()
    cm.kill_image().wait()            # (4) kill cache manager

Every method returns a :class:`~repro.net.transport.Completion`; sim
code yields ``completion.sim_event()``, threaded code calls
``completion.wait()`` (the examples show both styles).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.core import messages as M
from repro.core.image import DeltaImage, ObjectImage
from repro.core.messages import TraceLog
from repro.core.modes import Mode
from repro.core.property_set import PropertySet
from repro.core.reflection import reflect_variables
from repro.core.triggers import TriggerSet
from repro.errors import ProtocolError
from repro.net.message import Message
from repro.net.transport import Completion, Transport

# Application-facing function signatures (paper Fig 3):
#   extract_from_view(view, view_property_list) -> ObjectImage
#   merge_into_view(view, image, view_property_list) -> None
ExtractFromView = Callable[[Any, PropertySet], ObjectImage]
MergeIntoView = Callable[[Any, ObjectImage, PropertySet], None]


class _CompletionLock:
    """FIFO lock built on completions — works on both transport backends.

    Used for the ``startUseImage``/``endUseImage`` mutual exclusion the
    paper requires between application use and merge/extract (Fig 2
    steps 6-7).
    """

    def __init__(self, transport: Transport, name: str = "use-lock") -> None:
        self._transport = transport
        self.name = name
        self._held = False
        self._queue: Deque[Completion] = deque()
        self._lock = threading.Lock()

    @property
    def held(self) -> bool:
        return self._held

    def acquire(self) -> Completion:
        comp = self._transport.completion(f"{self.name}.acquire")
        grant_now = False
        with self._lock:
            if not self._held:
                self._held = True
                grant_now = True
            else:
                self._queue.append(comp)
        if grant_now:
            comp.resolve(None)
        return comp

    def try_acquire(self) -> bool:
        with self._lock:
            if self._held:
                return False
            self._held = True
            return True

    def release(self) -> None:
        nxt: Optional[Completion] = None
        with self._lock:
            if not self._held:
                raise ProtocolError(f"{self.name}: release while not held")
            if self._queue:
                nxt = self._queue.popleft()
            else:
                self._held = False
        if nxt is not None:
            nxt.resolve(None)


class CacheManager:
    """Per-view protocol engine + application API."""

    def __init__(
        self,
        transport: Transport,
        directory_address: str,
        view_id: str,
        view: Any,
        properties: PropertySet,
        extract_from_view: ExtractFromView,
        merge_into_view: MergeIntoView,
        mode: Mode | str = Mode.WEAK,
        triggers: Optional[TriggerSet] = None,
        trigger_poll_period: float = 100.0,
        address: Optional[str] = None,
        trace: Optional[TraceLog] = None,
        request_timeout: Optional[float] = None,
        max_retries: int = 3,
        heartbeat_period: Optional[float] = None,
        delta: bool = True,
    ) -> None:
        self.transport = transport
        self.directory_address = directory_address
        self.view_id = view_id
        self.view = view
        self.properties = properties
        self.extract_from_view = extract_from_view
        self.merge_into_view = merge_into_view
        self.mode = Mode.parse(mode)
        self.triggers = triggers or TriggerSet()
        self.trigger_poll_period = trigger_poll_period
        self.address = address or f"cm:{view_id}"
        self.trace = trace
        # At-least-once sending: when request_timeout is set, an
        # unanswered request is retransmitted (same msg_id, so the
        # directory's reply cache makes the retry idempotent) up to
        # max_retries times before the waiting completion fails.
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        # Lease renewal: when set, the CM sends HEARTBEAT every period
        # after registration so the directory's failure detector keeps
        # its lease alive.  Repeated heartbeat silence degrades the CM
        # (see below) instead of letting it operate on a dead link.
        self.heartbeat_period = heartbeat_period
        # Delta synchronization: attach a ``since`` cursor to every data
        # request so the directory can serve only the cells that changed
        # since our last sync.  Off → requests carry no cursor and every
        # serve ships the full slice (the paper's baseline wire format).
        self.delta = delta

        # Protocol state.
        # Every state-carrying message (PUSH, UNREGISTER, INVALIDATE_ACK,
        # FETCH_REPLY) is stamped with an increasing per-view sequence
        # number so a delayed retransmission can never re-commit a stale
        # snapshot over newer state at the directory.
        self._state_seq = 0
        self.registered = False
        self.owner = False        # strong-mode exclusive ownership
        self.invalidated = True   # until first init, local data is invalid
        self._base: ObjectImage = ObjectImage()  # state as of last sync
        # Delta-sync base: the accumulated slice image (last complete
        # serve ⊕ every delta since), and the directory commit cursor it
        # corresponds to.  ``-1`` means "no base" — the next serve must
        # be complete.
        self._synced: Optional[ObjectImage] = None
        self._since: int = -1
        self._pending: Dict[int, Completion] = {}
        # Invalidations deferred while the view is inside its critical
        # section.  A list (not a slot): on a sharded directory plane,
        # several shards can concurrently revoke one spanning view, and
        # every revoker must be answered *after* the critical section —
        # acking any of them early would let a contending view be
        # granted that shard's partition while we are still writing it.
        self._pending_invalidates: List[Message] = []
        # Full-slice fetches (a recovering directory reclaiming the
        # authoritative image from its exclusive owner) deferred for the
        # same reason: answering mid-critical-section would hand the
        # directory a half-edited view.
        self._pending_fetches: List[Message] = []
        self._use_lock = _CompletionLock(transport, f"{view_id}.use")
        self._in_use = False
        self._lock = threading.RLock()
        self._trigger_timer = None
        self._trigger_inflight = False
        self._triggers_stopped = False
        self._closed = False
        self._crashed = False
        # Graceful degradation: set when the directory stays silent
        # through a full retry budget (or heartbeats go unanswered).
        # A degraded CM serves weak reads from its possibly-stale local
        # copy and refuses strong-mode use; any answered request clears
        # the flag.
        self.degraded = False
        self._heartbeat_timer = None
        self._heartbeat_inflight = False
        # Reused environment dict for trigger evaluation: one allocation
        # per trigger-set change instead of one per poll tick.
        self._trigger_env_dict: Dict[str, Any] = {}

        # Instrumentation.
        self.counters: Dict[str, int] = {
            "pushes": 0, "pulls": 0, "acquires": 0,
            "invalidations": 0, "fetches": 0, "trigger_fires": 0,
            "retries": 0, "heartbeats": 0, "degradations": 0,
            "recoveries": 0, "stale_serves": 0,
            "delta_pulls": 0, "full_pulls": 0, "delta_fallbacks": 0,
        }

        self.endpoint = transport.bind(self.address, self._on_message)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _trace(self, event: str, **detail: Any) -> None:
        if self.trace is not None:
            self.trace.record(self.transport.now(), self.address, event, **detail)

    def _request(
        self,
        msg_type: str,
        payload: Dict[str, Any],
        timeout: Optional[float] = None,
    ) -> Completion:
        payload = dict(payload)
        payload["view_id"] = self.view_id
        msg = Message(msg_type, self.address, self.directory_address, payload)
        comp = self.transport.completion(f"{self.view_id}.{msg_type}")
        with self._lock:
            self._pending[msg.msg_id] = comp
        self._trace(f"send:{msg_type}", dst=self.directory_address)
        self.endpoint.send(msg)
        timeout = timeout if timeout is not None else self.request_timeout
        if timeout is not None:
            self._arm_retry(msg, comp, timeout, attempts_left=self.max_retries)
        return comp

    def _arm_retry(
        self, msg: Message, comp: Completion, timeout: float, attempts_left: int
    ) -> None:
        def maybe_resend() -> None:
            with self._lock:
                still_pending = msg.msg_id in self._pending and not comp.done
                if not still_pending or self._closed:
                    return
                if attempts_left <= 0:
                    self._pending.pop(msg.msg_id, None)
                    # The directory stayed silent through the whole
                    # retry budget: degrade rather than flail (weak
                    # reads keep working from the local copy).
                    self._mark_degraded(msg.msg_type)
                    comp.fail(
                        ProtocolError(
                            f"{self.view_id}: {msg.msg_type} unanswered after "
                            f"{self.max_retries} retries"
                        )
                    )
                    return
                self._trace(f"retry:{msg.msg_type}", attempts_left=attempts_left)
                self.counters["retries"] = self.counters.get("retries", 0) + 1
            if not self.endpoint.closed:
                self.endpoint.send(msg)  # same msg_id: dedup-safe
            self._arm_retry(msg, comp, timeout, attempts_left - 1)

        self.transport.schedule(timeout, maybe_resend)

    def _mark_degraded(self, cause: str) -> None:
        if not self.degraded:
            self.degraded = True
            self.counters["degradations"] += 1
            self._trace("degraded", cause=cause)

    def _on_message(self, msg: Message) -> None:
        with self._lock:
            self._trace(f"recv:{msg.msg_type}")
            if msg.reply_to is not None and msg.reply_to in self._pending:
                comp = self._pending.pop(msg.reply_to)
                if msg.msg_type == M.ERROR:
                    comp.fail(ProtocolError(msg.payload.get("error", "directory error")))
                else:
                    if self.degraded:
                        # The directory answered: the link is back.
                        self.degraded = False
                        self._trace("degradation-cleared")
                    comp.resolve(msg)
                return
            if msg.msg_type == M.INVALIDATE:
                self._h_invalidate(msg)
            elif msg.msg_type == M.FETCH_REQ:
                self._h_fetch(msg)
            else:
                self._trace("unexpected-message", type=msg.msg_type)

    # -- directory-initiated commands ------------------------------------
    def _h_invalidate(self, msg: Message) -> None:
        self.counters["invalidations"] += 1
        if self._in_use:
            # The view is inside startUse/endUse — defer until it exits
            # the critical section (mutual exclusion, Fig 2 steps 6-7).
            # A duplicate delivery of an already-deferred invalidate
            # (injected fault or retransmission: same msg_id) collapses
            # into the original; distinct msg_ids are distinct revokers
            # (e.g. several shards of a partitioned directory plane) and
            # each gets its own ACK at end-of-use.
            if all(m.msg_id != msg.msg_id for m in self._pending_invalidates):
                self._pending_invalidates.append(msg)
            return
        self._complete_invalidate(msg)

    def _next_state_seq(self) -> int:
        self._state_seq += 1
        return self._state_seq

    def _complete_invalidate(self, msg: Message) -> None:
        dirty = self._extract_dirty()
        self._absorb_dirty(dirty)
        self.owner = False
        self.invalidated = True
        self._trace(f"send:{M.INVALIDATE_ACK}", dst=msg.src)
        self.endpoint.send(
            msg.reply(
                M.INVALIDATE_ACK,
                {"view_id": self.view_id, "image": dirty,
                 "state_seq": self._next_state_seq()},
            )
        )
        # The dirty cells were handed to the directory; our base now
        # reflects the view (nothing left dirty).
        self._rebase()

    def _h_fetch(self, msg: Message) -> None:
        self.counters["fetches"] += 1
        full = bool(msg.payload.get("full"))
        if full and self._in_use:
            # A recovering directory is reclaiming the authoritative
            # slice from us; answer after the critical section so it
            # cannot capture a half-edited view.
            if all(m.msg_id != msg.msg_id for m in self._pending_fetches):
                self._pending_fetches.append(msg)
            return
        self._complete_fetch(msg)

    def _complete_fetch(self, msg: Message) -> None:
        full = bool(msg.payload.get("full"))
        dirty = ObjectImage() if self._in_use else self._extract_dirty()
        self._absorb_dirty(dirty)
        image = self._extract_current() if full else dirty
        self._trace(f"send:{M.FETCH_REPLY}", dst=msg.src)
        self.endpoint.send(
            msg.reply(
                M.FETCH_REPLY,
                {"view_id": self.view_id, "image": image,
                 "state_seq": self._next_state_seq()},
            )
        )
        if not self._in_use:
            self._rebase()

    # -- dirty tracking ------------------------------------------------------
    def _extract_current(self) -> ObjectImage:
        return self.extract_from_view(self.view, self.properties)

    def _extract_dirty(self) -> ObjectImage:
        """Cells whose value changed since the last sync point."""
        current = self._extract_current()
        dirty = ObjectImage()
        for key in current.keys():
            if key not in self._base or self._base.get(key) != current.get(key):
                dirty.cells[key] = current.get(key)
        return dirty

    def _rebase(self) -> None:
        self._base = self._extract_current()

    def has_dirty_data(self) -> bool:
        return not self._extract_dirty().is_empty()

    def _apply_image(self, image: ObjectImage) -> None:
        self.merge_into_view(self.view, image, self.properties)
        self._rebase()
        self.invalidated = False

    # -- delta synchronization -----------------------------------------------
    def _apply_served(self, served: Any) -> Optional[ObjectImage]:
        """Apply a served image payload; returns the effective full image.

        The directory may answer a cursor-carrying request with either a
        plain :class:`ObjectImage` (delta disabled there) or a
        :class:`DeltaImage` — complete, or a version-filtered delta
        against our accumulated base.  A delta merges into ``_synced``
        and the *whole* accumulated image is applied to the view, so
        local semantics are exactly those of a full pull while only the
        changed cells crossed the wire.  Returns ``None`` when the delta
        references a base this CM no longer holds (the caller must
        re-request with ``full=True``).  Call with ``self._lock`` held.
        """
        if not isinstance(served, DeltaImage):
            self._synced = None
            self._since = -1
            self._apply_image(served)
            return served
        if served.complete:
            self._synced = served.image.copy()
            self._since = served.as_of
            self.counters["full_pulls"] += 1
            self._apply_image(served.image)
            return served.image
        if self._synced is None or served.base_seq > self._since:
            return None
        self.counters["delta_pulls"] += 1
        self._synced.merge_newer(served.image)
        self._since = max(self._since, served.as_of)
        self._apply_image(self._synced)
        return self._synced.copy()

    def _absorb_dirty(self, dirty: ObjectImage) -> None:
        """Fold cells we hand to the directory into the sync base.

        The directory advances our seen-cursor when it commits them, so
        later deltas will not echo them back; without this a later
        full-apply of ``_synced`` would revert the view's own writes.
        Versions stay as last served — safe, since a newer committed
        value for these keys always carries a strictly higher version.
        """
        if self._synced is not None and not dirty.is_empty():
            self._synced.cells.update(dirty.cells)

    def _request_data(
        self,
        msg_type: str,
        payload: Dict[str, Any],
        on_fail: Callable[[BaseException], None],
        on_done: Callable[[ObjectImage], None],
        on_state: Optional[Callable[[], None]] = None,
        full: bool = False,
    ) -> None:
        """Issue a data-carrying request and apply the served image.

        ``on_state`` runs under the CM lock right after a successful
        apply (for ownership/critical-section flags); ``on_done``
        receives the effective full image.  A delta reply whose base we
        no longer hold triggers exactly one re-request with ``full=True``
        (counted in ``delta_fallbacks``).
        """
        req = dict(payload)
        if self.delta:
            req["since"] = self._since
            if full:
                req["full"] = True

        def on_reply(reply: Completion) -> None:
            try:
                msg = reply.value
            except BaseException as exc:
                on_fail(exc)
                return
            with self._lock:
                image = self._apply_served(msg.payload["image"])
                if image is not None and on_state is not None:
                    on_state()
            if image is not None:
                on_done(image)
                return
            if full:
                on_fail(ProtocolError(
                    f"{self.view_id}: delta served against unknown base "
                    f"even after a full re-request"
                ))
                return
            self.counters["delta_fallbacks"] += 1
            self._trace("delta-fallback", msg_type=msg_type)
            self._request_data(
                msg_type, payload, on_fail, on_done, on_state, full=True
            )

        self._request(msg_type, req).then(on_reply)

    # ------------------------------------------------------------------
    # View-facing API (Fig 3)
    # ------------------------------------------------------------------
    def start(self) -> Completion:
        """Register with the directory manager; starts the trigger poller."""
        comp = self.transport.completion(f"{self.view_id}.start")

        def on_ack(reply: Completion) -> None:
            try:
                reply.value
            except BaseException as exc:
                comp.fail(exc)
                return
            self.registered = True
            self._start_trigger_poller()
            self._start_heartbeats()
            comp.resolve(self)

        self._request(
            M.REGISTER,
            {
                "properties": self.properties,
                "mode": self.mode.value,
                "triggers": self.triggers.to_jsonable(),
            },
        ).then(on_ack)
        return comp

    def init_image(self) -> Completion:
        """First data acquisition (Fig 2 steps 3-5); resolves to the image."""
        return self._sync_request(M.INIT_REQ, count_as="pulls")

    def pull_image(self) -> Completion:
        """Refresh the view from the primary copy; resolves to the image."""
        return self._sync_request(M.PULL_REQ, count_as="pulls")

    def _sync_request(self, msg_type: str, count_as: str) -> Completion:
        self.counters[count_as] += 1
        comp = self.transport.completion(f"{self.view_id}.{msg_type}")
        self._request_data(
            msg_type,
            {"need_fresh": self._evaluate_validity()},
            on_fail=comp.fail,
            on_done=comp.resolve,
        )
        return comp

    def push_image(self) -> Completion:
        """Commit dirty cells to the primary copy; resolves to #committed."""
        self.counters["pushes"] += 1
        comp = self.transport.completion(f"{self.view_id}.push")
        dirty = self._extract_dirty()
        self._absorb_dirty(dirty)

        def on_ack(reply: Completion) -> None:
            try:
                msg = reply.value
            except BaseException as exc:
                comp.fail(exc)
                return
            comp.resolve(msg.payload.get("committed", 0))

        self._request(
            M.PUSH, {"image": dirty, "state_seq": self._next_state_seq()}
        ).then(on_ack)
        self._rebase()
        return comp

    def start_use_image(self) -> Completion:
        """Enter the critical section; in strong mode, acquire ownership.

        Resolves once the view may touch the shared data.  The returned
        value is ``self`` for chaining.
        """
        comp = self.transport.completion(f"{self.view_id}.start_use")

        def locked(_lk: Completion) -> None:
            if self.degraded:
                if self.mode is Mode.STRONG:
                    # No directory, no ownership: strong-mode semantics
                    # cannot be honored while degraded.
                    self._use_lock.release()
                    comp.fail(
                        ProtocolError(
                            f"{self.view_id}: degraded (directory silent); "
                            f"strong-mode use refused"
                        )
                    )
                    return
                # Weak mode: serve the possibly-stale local copy rather
                # than block on a silent directory (reads only — pushes
                # will be retried against the directory as usual).
                self.counters["stale_serves"] += 1
                self._trace("stale-serve")
                self._in_use = True
                comp.resolve(self)
                return
            if self.mode is Mode.STRONG and not self.owner:
                self.counters["acquires"] += 1

                def fail_locked(exc: BaseException) -> None:
                    self._use_lock.release()
                    comp.fail(exc)

                def granted() -> None:
                    self.owner = True
                    self._in_use = True

                self._request_data(
                    M.ACQUIRE, {},
                    on_fail=fail_locked,
                    on_done=lambda _img: comp.resolve(self),
                    on_state=granted,
                )
            elif self.invalidated:
                def fail_locked(exc: BaseException) -> None:
                    self._use_lock.release()
                    comp.fail(exc)

                def entered() -> None:
                    self._in_use = True

                self.counters["pulls"] += 1
                self._request_data(
                    M.PULL_REQ,
                    {"need_fresh": self._evaluate_validity()},
                    on_fail=fail_locked,
                    on_done=lambda _img: comp.resolve(self),
                    on_state=entered,
                )
            else:
                self._in_use = True
                comp.resolve(self)

        self._use_lock.acquire().then(locked)
        return comp

    def end_use_image(self) -> None:
        """Leave the critical section; honors a deferred invalidation."""
        with self._lock:
            if not self._in_use:
                raise ProtocolError(f"{self.view_id}: end_use without start_use")
            self._in_use = False
            deferred = self._pending_invalidates
            self._pending_invalidates = []
            fetches = self._pending_fetches
            self._pending_fetches = []
            # Answer every deferred revoker in arrival order.  The first
            # ACK carries all dirty cells (and rebases); the rest are
            # empty — on a sharded plane the router re-homes any cells
            # the first revoker's shard does not own.
            for msg in deferred:
                self._complete_invalidate(msg)
            for msg in fetches:
                self._complete_fetch(msg)
        self._use_lock.release()

    def set_mode(self, mode: Mode | str) -> Completion:
        """Switch consistency mode at run time (paper §4, Fig 5)."""
        new_mode = Mode.parse(mode)
        comp = self.transport.completion(f"{self.view_id}.set_mode")

        def send_set_mode(_prev: Optional[Completion] = None) -> None:
            def on_ack(reply: Completion) -> None:
                try:
                    reply.value
                except BaseException as exc:
                    comp.fail(exc)
                    return
                with self._lock:
                    self.mode = new_mode
                    if new_mode is Mode.WEAK:
                        self.owner = False
                comp.resolve(new_mode)

            self._request(M.SET_MODE, {"mode": new_mode.value}).then(on_ack)

        if self.mode is Mode.STRONG and new_mode is Mode.WEAK and self.owner:
            # Leaving strong mode: surrender dirty state first so the
            # primary copy stays authoritative.
            self.push_image().then(send_set_mode)
        else:
            send_set_mode()
        return comp

    def set_triggers(self, triggers: TriggerSet) -> None:
        """Replace the quality triggers at run time (weak-level tuning)."""
        self.triggers = triggers
        self._trigger_env_dict = {}  # variable set may have changed

    def update_properties(self, properties: PropertySet) -> Completion:
        """Change the view's data properties at run time (paper §4.1)."""
        comp = self.transport.completion(f"{self.view_id}.prop_update")

        def on_ack(reply: Completion) -> None:
            try:
                reply.value
            except BaseException as exc:
                comp.fail(exc)
                return
            with self._lock:
                self.properties = properties
                self.invalidated = True  # slice changed; re-pull before use
                self._synced = None      # old slice's delta base is void
                self._since = -1
            comp.resolve(properties)

        self._request(M.PROP_UPDATE, {"properties": properties}).then(on_ack)
        return comp

    def kill_image(self) -> Completion:
        """Final push + unregister + release resources (Fig 2 steps 20-21)."""
        comp = self.transport.completion(f"{self.view_id}.kill")
        with self._lock:
            # Silence the trigger poller and heartbeats immediately: a
            # pull or lease renewal racing the unregister would arrive
            # at the directory as an unregistered view.
            self._triggers_stopped = True
            if self._trigger_timer is not None:
                self._trigger_timer.cancel()
                self._trigger_timer = None
            self._stop_heartbeats()
        dirty = self._extract_dirty()

        def on_ack(reply: Completion) -> None:
            try:
                reply.value
            except BaseException as exc:
                comp.fail(exc)
                return
            self._shutdown()
            comp.resolve(None)

        self._request(
            M.UNREGISTER, {"image": dirty, "state_seq": self._next_state_seq()}
        ).then(on_ack)
        return comp

    def _shutdown(self) -> None:
        with self._lock:
            self._closed = True
            self.registered = False
            if self._trigger_timer is not None:
                self._trigger_timer.cancel()
                self._trigger_timer = None
            self._stop_heartbeats()
        self.endpoint.close()

    # ------------------------------------------------------------------
    # Crash & recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Simulate an abrupt process crash.

        The endpoint vanishes (in-flight messages to it are dropped by
        the transport), timers die, pending completions are abandoned,
        and all volatile protocol state — sync base, ownership, dirty
        tracking — is lost, exactly as if the hosting process died.
        The view object itself survives only because the caller owns
        it; :meth:`recover` re-syncs it from the primary copy.
        """
        with self._lock:
            if self._crashed:
                return
            self._crashed = True
            self._closed = True
            self.registered = False
            self.owner = False
            self.invalidated = True
            self._triggers_stopped = True
            if self._trigger_timer is not None:
                self._trigger_timer.cancel()
                self._trigger_timer = None
            self._stop_heartbeats()
            self._pending.clear()  # a dead process answers nothing
            self._pending_invalidates = []
            self._pending_fetches = []
            self._in_use = False
            self._base = ObjectImage()
            self._synced = None  # delta base is volatile state too
            self._since = -1
            self._trace("crash")
        self.endpoint.close()

    def recover(self) -> Completion:
        """Restart after :meth:`crash`: re-REGISTER and re-sync.

        The re-REGISTER is idempotent at the directory (``recover``
        flag): whether the old registration is still live, quarantined,
        or gone, the CM gets an ACK carrying the directory's
        ``last_state_seq`` cursor (so post-recovery pushes are not
        mistaken for stale retransmissions) and then pulls a full image
        from the primary copy.  Resolves to the fresh image.
        """
        comp = self.transport.completion(f"{self.view_id}.recover")
        with self._lock:
            if not self._crashed:
                comp.fail(ProtocolError(f"{self.view_id}: recover without crash"))
                return comp
            self._crashed = False
            self._closed = False
            self.degraded = False
            self.counters["recoveries"] += 1
            self.endpoint = self.transport.bind(self.address, self._on_message)
            self._trace("recover")

        def on_ack(reply: Completion) -> None:
            try:
                msg = reply.value
            except BaseException as exc:
                comp.fail(exc)
                return
            with self._lock:
                self.registered = True
                # Resume state-seq numbering above the directory's
                # cursor: a fresh process restarting at 0 would have
                # every push dropped as a stale retransmission.
                self._state_seq = max(
                    self._state_seq, msg.payload.get("last_state_seq") or 0
                )
            self._start_trigger_poller()
            self._start_heartbeats()

            # Full re-sync from the primary copy (the crash dropped our
            # delta base, so the cursor is -1 and the serve is complete).
            self._request_data(
                M.INIT_REQ,
                {"need_fresh": False},
                on_fail=comp.fail,
                on_done=comp.resolve,
            )

        self._request(
            M.REGISTER,
            {
                "properties": self.properties,
                "mode": self.mode.value,
                "triggers": self.triggers.to_jsonable(),
                "recover": True,
            },
        ).then(on_ack)
        return comp

    # ------------------------------------------------------------------
    # Heartbeats (lease renewal)
    # ------------------------------------------------------------------
    def _start_heartbeats(self) -> None:
        if self.heartbeat_period is None:
            return
        self._schedule_heartbeat()

    def _schedule_heartbeat(self) -> None:
        if self._closed or self._crashed:
            return
        self._heartbeat_timer = self.transport.schedule(
            self.heartbeat_period, self._send_heartbeat
        )

    def _stop_heartbeats(self) -> None:
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
            self._heartbeat_timer = None

    def _send_heartbeat(self) -> None:
        if self._closed or self._crashed or not self.registered:
            return
        if self._heartbeat_inflight:  # never stack unanswered heartbeats
            self._schedule_heartbeat()
            return
        self._heartbeat_inflight = True
        self.counters["heartbeats"] += 1
        # Per-attempt timeout: the configured request timeout, or the
        # heartbeat period itself so silence is noticed within a lease.
        timeout = self.request_timeout or self.heartbeat_period

        def done(reply: Completion) -> None:
            self._heartbeat_inflight = False
            try:
                reply.value
            except BaseException:
                # _arm_retry already degraded us; keep heartbeating so
                # a healed link clears the degradation.
                pass

        self._request(M.HEARTBEAT, {}, timeout=timeout).then(done)
        self._schedule_heartbeat()

    # ------------------------------------------------------------------
    # Quality-trigger machinery
    # ------------------------------------------------------------------
    def _trigger_env(self) -> Dict[str, Any]:
        # One env dict per tick, shared by the push/pull/validity
        # evaluations and reused across ticks (refreshed in place).
        env = self._trigger_env_dict
        names = self.triggers.view_variables()
        if names:
            env.update(reflect_variables(self.view, names))
        env["t"] = self.transport.now()
        return env

    def _evaluate_validity(self) -> bool:
        """True when the directory must fetch fresh state (validity fired)."""
        if self.triggers.validity is None:
            return False
        return self.triggers.validity.evaluate(self._trigger_env())

    def _start_trigger_poller(self) -> None:
        if self.triggers.push is None and self.triggers.pull is None:
            return
        self._triggers_stopped = False
        self._schedule_trigger_poll()

    def _schedule_trigger_poll(self) -> None:
        if self._closed or self._triggers_stopped:
            return
        self._trigger_timer = self.transport.schedule(
            self.trigger_poll_period, self._poll_triggers
        )

    def _poll_triggers(self) -> None:
        if self._closed or self._triggers_stopped:
            return
        try:
            if not self._trigger_inflight and not self._in_use:
                env = self._trigger_env()
                if self.triggers.push is not None and self.triggers.push.evaluate(env):
                    if self.has_dirty_data():
                        self._fire_trigger(self.push_image)
                if (
                    not self._trigger_inflight
                    and self.triggers.pull is not None
                    and self.triggers.pull.evaluate(env)
                ):
                    self._fire_trigger(self.pull_image)
        finally:
            self._schedule_trigger_poll()

    def _fire_trigger(self, action: Callable[[], Completion]) -> None:
        self.counters["trigger_fires"] += 1
        self._trigger_inflight = True

        def done(_c: Completion) -> None:
            self._trigger_inflight = False

        action().then(done)
