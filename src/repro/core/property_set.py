"""Property sets and their intersection (paper §4.1, Definition 2).

The paper assumes a set never holds two properties with the same name;
:class:`PropertySet` enforces that at construction.  The intersection of
two sets is the set of pairwise property intersections — non-empty
intersection means the owning views *conflict* (share data).

Hot-path note: sets are immutable, so the deterministic name-sorted
ordering is computed once at construction and reused by ``__iter__``,
``names()``, and the wire encoding — the conflict loop in the directory
iterates property sets on every ACQUIRE/PULL round and must not re-sort.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.property import Property
from repro.errors import PropertyError
from repro.net.codec import register_codec_type


class PropertySet:
    """An immutable collection of uniquely-named properties."""

    __slots__ = ("_by_name", "_sorted", "_names", "_hash")

    def __init__(self, properties: Iterable[Property] = ()) -> None:
        by_name: Dict[str, Property] = {}
        for p in properties:
            if not isinstance(p, Property):
                raise PropertyError(f"not a Property: {p!r}")
            if p.name in by_name:
                raise PropertyError(
                    f"duplicate property name in set: {p.name!r} "
                    "(the paper assumes name_i != name_j for all i, j)"
                )
            by_name[p.name] = p
        # Intern the deterministic ordering once (sets are immutable).
        ordered: Tuple[Property, ...] = tuple(
            by_name[n] for n in sorted(by_name)
        )
        object.__setattr__(self, "_by_name", by_name)
        object.__setattr__(self, "_sorted", ordered)
        object.__setattr__(self, "_names", tuple(p.name for p in ordered))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, key, value):
        raise PropertyError("PropertySet is immutable")

    # -- collection protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[Property]:
        # Deterministic order: sorted by name (precomputed).
        return iter(self._sorted)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Optional[Property]:
        return self._by_name.get(name)

    def names(self) -> List[str]:
        return list(self._names)

    def is_empty(self) -> bool:
        return not self._by_name

    # -- algebra -----------------------------------------------------------
    def intersect(self, other: "PropertySet") -> "PropertySet":
        """Definition 2: all non-empty pairwise property intersections.

        Since names are unique within a set, only same-named pairs can
        intersect, so this is a linear merge rather than a cross product.
        """
        out: List[Property] = []
        small, large = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        large_by_name = large._by_name
        for name, p in small._by_name.items():
            q = large_by_name.get(name)
            if q is None:
                continue
            r = p.intersect(q)
            if r is not None:
                out.append(r)
        return PropertySet(out)

    def conflicts_with(self, other: "PropertySet") -> bool:
        """Definition 1 (``dynConfl``): true iff the intersection is non-empty.

        Boolean fast path: answers via domain overlap tests without
        materializing the intersected set (the directory only needs the
        yes/no answer on every conflict query).
        """
        small, large = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        large_by_name = large._by_name
        for name, p in small._by_name.items():
            q = large_by_name.get(name)
            if q is not None and p.domain.overlaps(q.domain):
                return True
        return False

    def union_names(self, other: "PropertySet") -> List[str]:
        return sorted(set(self._names).union(other._names))

    def index_keys(self) -> Iterator[Tuple[str, Optional[Iterable]]]:
        """Posting keys for the directory's conflict index.

        Yields ``(name, keys)`` per property in deterministic order,
        where ``keys`` enumerates the domain's values (finite domains)
        or is ``None`` for unenumerable domains (intervals), which the
        index must post at name level.
        """
        for p in self._sorted:
            yield p.name, p.domain.index_keys()

    # -- wire --------------------------------------------------------------
    def to_jsonable(self) -> list:
        return [p.to_jsonable() for p in self._sorted]

    @classmethod
    def from_jsonable(cls, items: list) -> "PropertySet":
        return cls(Property.from_jsonable(d) for d in items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PropertySet) and self._by_name == other._by_name

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(frozenset(self._by_name.values()))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self._sorted)
        return f"PropertySet([{inner}])"


register_codec_type(
    "flecc.property_set",
    PropertySet,
    to_jsonable=PropertySet.to_jsonable,
    from_jsonable=PropertySet.from_jsonable,
)
