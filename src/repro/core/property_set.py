"""Property sets and their intersection (paper §4.1, Definition 2).

The paper assumes a set never holds two properties with the same name;
:class:`PropertySet` enforces that at construction.  The intersection of
two sets is the set of pairwise property intersections — non-empty
intersection means the owning views *conflict* (share data).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.property import Property
from repro.errors import PropertyError
from repro.net.codec import register_codec_type


class PropertySet:
    """An immutable collection of uniquely-named properties."""

    __slots__ = ("_by_name",)

    def __init__(self, properties: Iterable[Property] = ()) -> None:
        by_name: Dict[str, Property] = {}
        for p in properties:
            if not isinstance(p, Property):
                raise PropertyError(f"not a Property: {p!r}")
            if p.name in by_name:
                raise PropertyError(
                    f"duplicate property name in set: {p.name!r} "
                    "(the paper assumes name_i != name_j for all i, j)"
                )
            by_name[p.name] = p
        object.__setattr__(self, "_by_name", by_name)

    def __setattr__(self, key, value):
        raise PropertyError("PropertySet is immutable")

    # -- collection protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[Property]:
        # Deterministic order: sorted by name.
        return iter(sorted(self._by_name.values(), key=lambda p: p.name))

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Optional[Property]:
        return self._by_name.get(name)

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def is_empty(self) -> bool:
        return not self._by_name

    # -- algebra -----------------------------------------------------------
    def intersect(self, other: "PropertySet") -> "PropertySet":
        """Definition 2: all non-empty pairwise property intersections.

        Since names are unique within a set, only same-named pairs can
        intersect, so this is a linear merge rather than a cross product.
        """
        out: List[Property] = []
        small, large = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        for p in small:
            q = large.get(p.name)
            if q is None:
                continue
            r = p.intersect(q)
            if r is not None:
                out.append(r)
        return PropertySet(out)

    def conflicts_with(self, other: "PropertySet") -> bool:
        """Definition 1 (``dynConfl``): true iff the intersection is non-empty."""
        return not self.intersect(other).is_empty()

    def union_names(self, other: "PropertySet") -> List[str]:
        return sorted(set(self.names()) | set(other.names()))

    # -- wire --------------------------------------------------------------
    def to_jsonable(self) -> list:
        return [p.to_jsonable() for p in self]

    @classmethod
    def from_jsonable(cls, items: list) -> "PropertySet":
        return cls(Property.from_jsonable(d) for d in items)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PropertySet) and self._by_name == other._by_name

    def __hash__(self) -> int:
        return hash(frozenset(self._by_name.values()))

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self)
        return f"PropertySet([{inner}])"


register_codec_type(
    "flecc.property_set",
    PropertySet,
    to_jsonable=PropertySet.to_jsonable,
    from_jsonable=PropertySet.from_jsonable,
)
