"""Append-only write-ahead log with CRC-framed records.

The durability plane (:mod:`repro.core.durability`) persists every
directory commit as one WAL record *before* the in-memory primary copy
advances.  This module owns the on-disk format and its two failure
stories:

- a **torn tail** — the process died mid-append, leaving a partial or
  CRC-bad record with nothing valid after it.  That record was never
  acknowledged (the append had not returned), so the reader silently
  truncates it and recovery proceeds;
- **mid-log corruption** — a CRC-bad record *followed by* further valid
  records.  That data was acknowledged as durable and is now gone;
  recovering past the hole would silently resurrect a stale prefix, so
  the reader fail-stops with :class:`WalCorruptionError`.

File layout::

    bytes 0-7   magic  b"FLWAL01\\n"
    record      u32 BE payload length | payload | u32 BE crc32(payload)

Payloads are opaque bytes to this module; the durability layer encodes
its records with :func:`repro.net.binary_codec.encode_value`, so cell
images inside WAL records reuse the wire codec's fused
(key, version, value) cell encoding.

Durability model: a *simulated* process kill cannot lose OS page-cache
contents, so :class:`WalWriter` tracks the byte offset covered by the
last explicit ``sync()`` and :meth:`WalWriter.simulate_crash` truncates
the file back to it — exactly the bytes a real kill could lose under
the configured fsync policy, no more, no less.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import ReproError

WAL_MAGIC = b"FLWAL01\n"
_LEN = struct.Struct(">I")
_CRC = struct.Struct(">I")
_HEADER_SIZE = len(WAL_MAGIC)
# Sanity cap on one record's declared length: a corrupted length field
# must not allocate gigabytes before the CRC gets a chance to object.
MAX_RECORD_BYTES = 64 * 1024 * 1024

# The fsync policy vocabulary (validated by DurabilitySpec too).
SYNC_ALWAYS = "always"
SYNC_BATCH = "batch"
SYNC_OFF = "off"
SYNC_POLICIES = (SYNC_ALWAYS, SYNC_BATCH, SYNC_OFF)


class WalError(ReproError):
    """A write-ahead log could not be read or written."""


class WalCorruptionError(WalError):
    """A CRC-bad record sits *before* valid data — acknowledged records
    are gone, and skipping the hole would silently serve a forked
    history.  Recovery must stop and surface the damage."""


def frame_record(payload: bytes) -> bytes:
    """One on-disk record: length prefix, payload, CRC32 trailer."""
    return _LEN.pack(len(payload)) + payload + _CRC.pack(
        zlib.crc32(payload) & 0xFFFFFFFF
    )


@dataclass
class WalScan:
    """The result of reading one WAL segment."""

    records: List[bytes] = field(default_factory=list)
    valid_end: int = _HEADER_SIZE   # byte offset where intact data ends
    torn: bool = False              # a tail was truncated at valid_end


def scan_wal(path: Union[str, Path]) -> WalScan:
    """Read every intact record of one segment.

    Torn tails (partial length/payload/CRC, or a CRC-bad record with no
    valid record after it) are reported via ``torn`` and excluded; a
    CRC-bad record *followed by* a valid one raises
    :class:`WalCorruptionError`.
    """
    raw = Path(path).read_bytes()
    if len(raw) < _HEADER_SIZE:
        if raw and not WAL_MAGIC.startswith(raw):
            raise WalError(f"{path}: not a WAL segment (bad magic)")
        # Killed before the header finished: an empty segment.
        return WalScan(records=[], valid_end=_HEADER_SIZE, torn=bool(raw))
    if raw[:_HEADER_SIZE] != WAL_MAGIC:
        raise WalError(f"{path}: not a WAL segment (bad magic)")
    scan = WalScan()
    pos = _HEADER_SIZE
    bad_at: Optional[int] = None          # offset of the first CRC-bad record
    records_after_bad = 0
    end = len(raw)
    while pos < end:
        if pos + _LEN.size > end:
            break  # partial length prefix: torn
        (length,) = _LEN.unpack_from(raw, pos)
        if length > MAX_RECORD_BYTES:
            break  # implausible length: treat as tail garbage
        body_end = pos + _LEN.size + length
        if body_end + _CRC.size > end:
            break  # partial payload or CRC: torn
        payload = raw[pos + _LEN.size : body_end]
        (crc,) = _CRC.unpack_from(raw, body_end)
        pos = body_end + _CRC.size
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            if bad_at is None:
                bad_at = pos - _LEN.size - length - _CRC.size
                continue  # keep scanning: is there valid data after?
            continue
        if bad_at is not None:
            records_after_bad += 1
            continue
        scan.records.append(payload)
        scan.valid_end = pos
    if bad_at is not None and records_after_bad:
        raise WalCorruptionError(
            f"{path}: CRC mismatch at byte {bad_at} with "
            f"{records_after_bad} valid record(s) after it — mid-log "
            f"corruption, not a torn tail; refusing to recover past it"
        )
    scan.torn = scan.valid_end < end
    return scan


class WalWriter:
    """Appender for one WAL segment with a pluggable fsync policy.

    - ``always`` — every append flushes and fsyncs before returning (no
      acknowledged record can be lost);
    - ``batch`` — fsync once per ``batch_interval`` appends (bounded
      loss window, amortized fsync cost);
    - ``off`` — no fsyncs while running; only :meth:`close` makes the
      segment durable (clean shutdowns lose nothing, kills lose the
      whole unsynced tail).
    """

    def __init__(
        self,
        path: Union[str, Path],
        sync: str = SYNC_ALWAYS,
        batch_interval: int = 16,
    ) -> None:
        if sync not in SYNC_POLICIES:
            raise WalError(f"unknown fsync policy {sync!r}; one of {SYNC_POLICIES}")
        if batch_interval < 1:
            raise WalError(f"batch_interval must be >= 1, got {batch_interval}")
        self.path = Path(path)
        self.sync_policy = sync
        self.batch_interval = batch_interval
        self.records_appended = 0
        self.syncs = 0
        self._unsynced = 0
        self._closed = False
        existing = self.path.exists() and self.path.stat().st_size >= _HEADER_SIZE
        self._f = open(self.path, "r+b" if existing else "wb")
        if existing:
            self._f.seek(0, io.SEEK_END)
        else:
            self._f.write(WAL_MAGIC)
            self._f.flush()
            os.fsync(self._f.fileno())
        # Everything on disk at open time survived whatever came before.
        self._durable_size = self._f.tell()

    @property
    def durable_size(self) -> int:
        """Byte offset a kill right now could not take back."""
        return self._durable_size

    @property
    def unsynced_records(self) -> int:
        """Appended records a kill right now would lose."""
        return self._unsynced

    def append(self, payload: bytes) -> bool:
        """Append one record; returns True when it is already durable."""
        if self._closed:
            raise WalError(f"{self.path}: writer is closed")
        self._f.write(frame_record(payload))
        self.records_appended += 1
        self._unsynced += 1
        if self.sync_policy == SYNC_ALWAYS or (
            self.sync_policy == SYNC_BATCH
            and self._unsynced >= self.batch_interval
        ):
            self.sync()
        return self._unsynced == 0

    def sync(self) -> None:
        """Flush and fsync: everything appended so far becomes durable."""
        if self._closed:
            return
        self._f.flush()
        os.fsync(self._f.fileno())
        self._durable_size = self._f.tell()
        self._unsynced = 0
        self.syncs += 1

    def close(self) -> None:
        """Clean shutdown: sync the tail, then close the file."""
        if self._closed:
            return
        self.sync()
        self._closed = True
        self._f.close()

    def simulate_crash(self, torn_tail: bytes = b"") -> None:
        """Die like a killed process under the configured fsync policy.

        Truncates the segment back to the last synced offset — the bytes
        an OS crash could lose — and optionally leaves ``torn_tail``
        garbage behind it (a record the kill interrupted mid-write).
        """
        if self._closed:
            raise WalError(f"{self.path}: writer is closed")
        self._f.flush()  # model the page cache: bytes reached the file
        self._closed = True
        self._f.close()
        with open(self.path, "r+b") as f:
            f.truncate(self._durable_size)
            if torn_tail:
                f.seek(0, io.SEEK_END)
                f.write(torn_tail)
