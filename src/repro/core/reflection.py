"""Reflection-based access to view variables (paper §4.1).

"There are two ways for the cache manager to evaluate the current
values of the object variables: (i) the object provides the necessary
methods ... (ii) the cache manager uses reflection ...  The current
prototype of PSF is working with Java-based applications, so we use the
latter mechanism."

Python's ``getattr`` plays the role of Java reflection here: the cache
manager reads named attributes off the view object to build trigger
environments, and — when the application supplies no extract/merge
functions — a :class:`ReflectionExtractor` moves attribute values
in and out of :class:`~repro.core.image.ObjectImage` cells directly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.core.image import ObjectImage
from repro.errors import TriggerEvalError


def reflect_variables(obj: Any, names: Iterable[str]) -> Dict[str, Any]:
    """Read the named attributes of ``obj`` (dotted paths supported).

    Missing attributes raise :class:`TriggerEvalError` so a typo in a
    trigger expression is reported against the view object rather than
    silently treated as false.
    """
    env: Dict[str, Any] = {}
    for name in names:
        target = obj
        for part in name.split("."):
            if not hasattr(target, part):
                raise TriggerEvalError(
                    f"view {type(obj).__name__} has no variable {name!r}"
                )
            target = getattr(target, part)
        if callable(target):
            raise TriggerEvalError(
                f"trigger variable {name!r} resolves to a method on "
                f"{type(obj).__name__}; triggers may only read data"
            )
        env[name] = target
    return env


class ReflectionExtractor:
    """Default extract/merge implementation via attribute reflection.

    Each listed attribute becomes one image cell keyed by its name.
    Applications with structured state (e.g. the airline database's
    per-flight cells) supply their own functions instead; this default
    exists so that simple views need no extract/merge code at all
    (paper's ease-of-use goal).
    """

    def __init__(self, attributes: Iterable[str]) -> None:
        self.attributes: List[str] = list(attributes)
        if not self.attributes:
            raise ValueError("ReflectionExtractor needs at least one attribute")

    def extract(self, obj: Any) -> ObjectImage:
        """Snapshot the listed attributes into an (unversioned) image."""
        img = ObjectImage()
        for name in self.attributes:
            if not hasattr(obj, name):
                raise TriggerEvalError(
                    f"{type(obj).__name__} has no attribute {name!r} to extract"
                )
            img.cells[name] = getattr(obj, name)
        return img

    def merge(self, obj: Any, image: ObjectImage) -> int:
        """Write image cells back onto the object; returns cells applied."""
        applied = 0
        for name in self.attributes:
            if name in image:
                setattr(obj, name, image.get(name))
                applied += 1
        return applied
