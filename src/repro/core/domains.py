"""Property value domains (paper §4.1).

A property's value set ``D_p`` is either an interval ``[d_min, d_max]``
or a set of discrete values ``{d_1, ..., d_n}``.  Domains support the
intersection operation of Definition 3 and an emptiness test; these two
operations are all the dynamic conflict computation needs.

Intersection across the two kinds is defined the natural way (an
interval intersected with a discrete set keeps the members inside the
interval) so applications may mix granularities — e.g. a travel agent
declaring the flight-number *range* it serves against another declaring
an explicit flight list.
"""

from __future__ import annotations

import abc
from typing import Any, FrozenSet, Iterable, Optional, Union

from repro.errors import PropertyError

Scalar = Union[int, float, str]


class Domain(abc.ABC):
    """Abstract value domain: supports intersection and emptiness."""

    @abc.abstractmethod
    def is_empty(self) -> bool: ...

    @abc.abstractmethod
    def intersect(self, other: "Domain") -> "Domain": ...

    @abc.abstractmethod
    def contains(self, value: Scalar) -> bool: ...

    def index_keys(self) -> Optional[Iterable[Scalar]]:
        """Enumerable posting keys for the directory's conflict index.

        A finite domain returns its values so views can be indexed per
        value; ``None`` means the domain is not enumerable (e.g. an
        interval) and the index must fall back to name-level postings.
        """
        return None

    def overlaps(self, other: "Domain") -> bool:
        """Boolean fast path: true iff ``intersect`` would be non-empty.

        Subclasses override with an O(1)/O(min) check that skips
        building the intersection object; this default stays correct
        for any future Domain subclass.
        """
        return not self.intersect(other).is_empty()

    @abc.abstractmethod
    def to_jsonable(self) -> dict: ...

    @staticmethod
    def from_jsonable(d: dict) -> "Domain":
        kind = d.get("kind")
        if kind == "interval":
            return Interval(d["lo"], d["hi"])
        if kind == "discrete":
            return DiscreteSet(d["values"])
        if kind == "empty":
            return EMPTY_DOMAIN
        raise PropertyError(f"unknown domain kind: {kind!r}")

    def __and__(self, other: "Domain") -> "Domain":
        return self.intersect(other)


class _EmptyDomain(Domain):
    """The empty value set (result of disjoint intersections)."""

    def is_empty(self) -> bool:
        return True

    def intersect(self, other: Domain) -> Domain:
        return self

    def overlaps(self, other: Domain) -> bool:
        return False

    def contains(self, value: Scalar) -> bool:
        return False

    def index_keys(self) -> Optional[Iterable[Scalar]]:
        return ()  # overlaps nothing: post no keys at all

    def to_jsonable(self) -> dict:
        return {"kind": "empty"}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _EmptyDomain) or (
            isinstance(other, Domain) and other.is_empty()
        )

    def __hash__(self) -> int:
        return hash("empty-domain")

    def __repr__(self) -> str:
        return "EmptyDomain"


EMPTY_DOMAIN = _EmptyDomain()


class Interval(Domain):
    """Closed numeric interval ``[lo, hi]``."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float) -> None:
        if not isinstance(lo, (int, float)) or not isinstance(hi, (int, float)):
            raise PropertyError(f"interval bounds must be numeric: [{lo!r}, {hi!r}]")
        if lo > hi:
            raise PropertyError(f"interval lower bound exceeds upper: [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    def is_empty(self) -> bool:
        return False  # construction enforces lo <= hi

    def contains(self, value: Scalar) -> bool:
        return isinstance(value, (int, float)) and self.lo <= value <= self.hi

    def intersect(self, other: Domain) -> Domain:
        if isinstance(other, _EmptyDomain):
            return EMPTY_DOMAIN
        if isinstance(other, Interval):
            lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
            return Interval(lo, hi) if lo <= hi else EMPTY_DOMAIN
        if isinstance(other, DiscreteSet):
            kept = frozenset(v for v in other.values if self.contains(v))
            return DiscreteSet(kept) if kept else EMPTY_DOMAIN
        raise PropertyError(f"cannot intersect Interval with {type(other).__name__}")

    def overlaps(self, other: Domain) -> bool:
        if isinstance(other, Interval):
            return max(self.lo, other.lo) <= min(self.hi, other.hi)
        if isinstance(other, DiscreteSet):
            lo, hi = self.lo, self.hi
            return any(
                isinstance(v, (int, float)) and lo <= v <= hi
                for v in other.values
            )
        if isinstance(other, _EmptyDomain):
            return False
        raise PropertyError(f"cannot intersect Interval with {type(other).__name__}")

    def to_jsonable(self) -> dict:
        return {"kind": "interval", "lo": self.lo, "hi": self.hi}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interval)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash(("interval", self.lo, self.hi))

    def __repr__(self) -> str:
        return f"Interval({self.lo}, {self.hi})"


class DiscreteSet(Domain):
    """Finite set of scalar values ``{d_1, ..., d_n}``."""

    __slots__ = ("values",)

    def __init__(self, values: Iterable[Scalar]) -> None:
        vals = frozenset(values)
        if not vals:
            raise PropertyError(
                "DiscreteSet cannot be empty; use the EMPTY_DOMAIN sentinel"
            )
        for v in vals:
            if not isinstance(v, (int, float, str)):
                raise PropertyError(f"discrete values must be scalars, got {v!r}")
        self.values: FrozenSet[Scalar] = vals

    def is_empty(self) -> bool:
        return False

    def contains(self, value: Scalar) -> bool:
        return value in self.values

    def index_keys(self) -> Optional[Iterable[Scalar]]:
        return self.values

    def intersect(self, other: Domain) -> Domain:
        if isinstance(other, _EmptyDomain):
            return EMPTY_DOMAIN
        if isinstance(other, DiscreteSet):
            common = self.values & other.values
            return DiscreteSet(common) if common else EMPTY_DOMAIN
        if isinstance(other, Interval):
            return other.intersect(self)
        raise PropertyError(
            f"cannot intersect DiscreteSet with {type(other).__name__}"
        )

    def overlaps(self, other: Domain) -> bool:
        if isinstance(other, DiscreteSet):
            return not self.values.isdisjoint(other.values)
        if isinstance(other, Interval):
            return other.overlaps(self)
        if isinstance(other, _EmptyDomain):
            return False
        raise PropertyError(
            f"cannot intersect DiscreteSet with {type(other).__name__}"
        )

    def to_jsonable(self) -> dict:
        return {"kind": "discrete", "values": sorted(self.values, key=repr)}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DiscreteSet) and self.values == other.values

    def __hash__(self) -> int:
        return hash(("discrete", self.values))

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in sorted(self.values, key=repr))
        return f"DiscreteSet({{{inner}}})"


def domain_from_spec(spec: Any) -> Domain:
    """Build a domain from shorthand: ``(lo, hi)`` tuple -> Interval,
    list/set -> DiscreteSet, Domain -> itself."""
    if isinstance(spec, Domain):
        return spec
    if isinstance(spec, tuple) and len(spec) == 2:
        return Interval(spec[0], spec[1])
    if isinstance(spec, (list, set, frozenset)):
        return DiscreteSet(spec)
    raise PropertyError(f"cannot build a domain from {spec!r}")
