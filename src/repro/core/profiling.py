"""Directory op-path profiling: cheap per-phase latency histograms.

The scale sweep (PR 7) showed that past a few thousand views the wall
is the directory manager, not the wire — but the message counters
cannot say *where inside an operation* the time goes.  This module adds
that observability: a :class:`DirectoryProfiler` holds one
:class:`PhaseHistogram` per op phase — conflict lookup, target build,
round fan-out, serve, commit, WAL append, register — fed with
monotonic-clock (``time.perf_counter_ns``) durations by the directory
when it is constructed with ``profile=True``.

Cost model: recording is one dict lookup, three integer adds and a
``bit_length`` bucket index — no allocation, no locks — so profiling
can stay on during benchmark ramps without perturbing what it measures.
When profiling is off the directory holds no profiler at all and the
hot paths pay a single ``is None`` test.

Histograms bucket by powers of two of nanoseconds (bucket *i* counts
durations with ``ns.bit_length() == i``), which gives ~2x resolution
from nanoseconds to seconds in 40 integers; percentiles are
bucket-upper-bound approximations, good to a factor of two, which is
plenty for "did per-op cost grow with fleet size" questions.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

# Canonical op phases, in pipeline order (phases are open-ended: a
# profiler accepts any label, these are the ones the directory emits).
PHASES = (
    "register",   # REGISTER handling (index + slice bookkeeping)
    "queue_wait", # enqueue -> round start (scheduler head-of-line wait)
    "conflict",   # conflict-set lookup for a queued op
    "targets",    # round target selection from the activity sets
    "fanout",     # sending the round's INVALIDATE/FETCH messages
    "serve",      # building the GRANT/INIT_DATA/PULL_DATA payload
    "commit",     # merging an image into the primary copy (incl. WAL)
    "wal",        # the WAL append alone (subset of commit)
)

clock_ns = time.perf_counter_ns


class PhaseHistogram:
    """Power-of-two-bucket latency histogram over nanosecond samples."""

    NBUCKETS = 40  # 2^39 ns ≈ 550 s: beyond any sane phase duration

    __slots__ = ("count", "total_ns", "max_ns", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0
        self.buckets: List[int] = [0] * self.NBUCKETS

    def record(self, ns: int) -> None:
        if ns < 0:
            ns = 0
        self.count += 1
        self.total_ns += ns
        if ns > self.max_ns:
            self.max_ns = ns
        b = ns.bit_length()
        if b >= self.NBUCKETS:
            b = self.NBUCKETS - 1
        self.buckets[b] += 1

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def percentile_ns(self, q: float) -> int:
        """Approximate q-quantile (bucket upper bound), q in [0, 1]."""
        if not self.count:
            return 0
        threshold = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= threshold and n:
                return (1 << i) - 1 if i else 0
        return self.max_ns

    def merge(self, other: "PhaseHistogram") -> "PhaseHistogram":
        self.count += other.count
        self.total_ns += other.total_ns
        self.max_ns = max(self.max_ns, other.max_ns)
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        return self

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "mean_ns": round(self.mean_ns, 1),
            "p50_ns": self.percentile_ns(0.50),
            "p99_ns": self.percentile_ns(0.99),
            "max_ns": self.max_ns,
        }


class DirectoryProfiler:
    """Per-phase op timing for one directory manager.

    Optionally mirrors every sample into a transport's
    :class:`~repro.net.stats.MessageStats` (``op_phase_ns`` /
    ``op_phase_count``) so phase totals surface through the same
    ``summary()`` / ``merge()`` pipeline the experiments already use.
    """

    __slots__ = ("phases", "ops", "stats")

    def __init__(self, stats=None) -> None:
        self.phases: Dict[str, PhaseHistogram] = {}
        self.ops = 0
        self.stats = stats

    def record(self, phase: str, ns: int) -> None:
        hist = self.phases.get(phase)
        if hist is None:
            hist = self.phases[phase] = PhaseHistogram()
        hist.record(ns)
        if self.stats is not None:
            self.stats.record_op_phase(phase, ns)

    def note_op(self) -> None:
        """Count one queued operation (acquire/pull/init) started."""
        self.ops += 1

    def total_ns(self, *phases: str) -> int:
        """Summed phase time (all phases when none are named).

        ``wal`` is a subset of ``commit``: when both are present and no
        explicit phase list is given, ``wal`` is excluded so the total
        does not double-count the append.  ``queue_wait`` is *elapsed*
        scheduler wait (it spans ACK round trips of other ops), not CPU
        work, so it is likewise excluded from the implicit total and
        must be asked for by name.
        """
        if phases:
            names: List[str] = list(phases)
        else:
            names = [
                p for p in self.phases
                if p != "queue_wait"
                and (p != "wal" or "commit" not in self.phases)
            ]
        return sum(
            self.phases[p].total_ns for p in names if p in self.phases
        )

    def merge(self, other: "DirectoryProfiler") -> "DirectoryProfiler":
        """Fold another profiler in (per-shard profiles → plane profile)."""
        self.ops += other.ops
        for phase, hist in other.phases.items():
            mine = self.phases.get(phase)
            if mine is None:
                mine = self.phases[phase] = PhaseHistogram()
            mine.merge(hist)
        return self

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        ordered = [p for p in PHASES if p in self.phases]
        ordered += sorted(p for p in self.phases if p not in PHASES)
        return {p: self.phases[p].as_dict() for p in ordered}

    def summary(self) -> str:
        """Human-readable per-phase table (experiment reports)."""
        lines = [f"directory op profile: {self.ops} ops"]
        for phase, d in self.as_dict().items():
            lines.append(
                f"  {phase:<10} n={d['count']:<8} mean={d['mean_ns']/1000:.1f}us "
                f"p50={d['p50_ns']/1000:.1f}us p99={d['p99_ns']/1000:.1f}us "
                f"max={d['max_ns']/1000:.1f}us"
            )
        return "\n".join(lines)
