"""Flecc protocol message vocabulary (paper §4.2, Fig 2).

The directory manager and cache managers exchange only the message
types listed here.  Keeping them as named constants (rather than ad-hoc
strings) lets :class:`~repro.net.stats.MessageStats` classify traffic
and lets tests assert on exact protocol conversations.

Request/response pairing:

====================  ======================  =============================
request               response                purpose
====================  ======================  =============================
REGISTER              REGISTER_ACK            view joins (props/mode/triggers)
INIT_REQ              INIT_DATA               first data acquisition (Fig 2)
PULL_REQ              PULL_DATA               refresh from primary copy
PUSH                  PUSH_ACK                commit dirty cells to primary
ACQUIRE               GRANT                   strong-mode exclusive ownership
INVALIDATE            INVALIDATE_ACK          revoke an active view (collects
                                              its dirty state)
FETCH_REQ             FETCH_REPLY             directory pulls fresh state
                                              from an active view (validity)
SET_MODE              SET_MODE_ACK            run-time mode switch
PROP_UPDATE           PROP_UPDATE_ACK         run-time property change
UNREGISTER            UNREGISTER_ACK          view leaves (killImage)
HEARTBEAT             HEARTBEAT_ACK           lease renewal (failure
                                              detection, beyond the paper)
====================  ======================  =============================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.net.message import BATCH  # noqa: F401  (re-export: protocol vocabulary)

# -- cache manager -> directory -----------------------------------------------
REGISTER = "REGISTER"
INIT_REQ = "INIT_REQ"
PULL_REQ = "PULL_REQ"
PUSH = "PUSH"
ACQUIRE = "ACQUIRE"
SET_MODE = "SET_MODE"
PROP_UPDATE = "PROP_UPDATE"
UNREGISTER = "UNREGISTER"
INVALIDATE_ACK = "INVALIDATE_ACK"
FETCH_REPLY = "FETCH_REPLY"
# Lease renewal (failure detection): a CM heartbeats periodically; a
# view whose lease expires is presumed crashed and evicted by the DM.
HEARTBEAT = "HEARTBEAT"

# -- directory -> cache manager ------------------------------------------------
REGISTER_ACK = "REGISTER_ACK"
INIT_DATA = "INIT_DATA"
PULL_DATA = "PULL_DATA"
PUSH_ACK = "PUSH_ACK"
GRANT = "GRANT"
INVALIDATE = "INVALIDATE"
FETCH_REQ = "FETCH_REQ"
SET_MODE_ACK = "SET_MODE_ACK"
PROP_UPDATE_ACK = "PROP_UPDATE_ACK"
UNREGISTER_ACK = "UNREGISTER_ACK"
HEARTBEAT_ACK = "HEARTBEAT_ACK"
ERROR = "ERROR"

REQUESTS = (
    REGISTER, INIT_REQ, PULL_REQ, PUSH, ACQUIRE,
    SET_MODE, PROP_UPDATE, UNREGISTER, HEARTBEAT,
)
RESPONSES = (
    REGISTER_ACK, INIT_DATA, PULL_DATA, PUSH_ACK, GRANT,
    SET_MODE_ACK, PROP_UPDATE_ACK, UNREGISTER_ACK, HEARTBEAT_ACK, ERROR,
)
DIRECTORY_INITIATED = (INVALIDATE, FETCH_REQ)
CM_REPLIES = (INVALIDATE_ACK, FETCH_REPLY)

ALL_TYPES = REQUESTS + RESPONSES + DIRECTORY_INITIATED + CM_REPLIES

# Control messages counted for the paper's Fig 4 efficiency metric:
# everything the coherence layer sends between CMs and the directory.
# A coalesced round frame (BATCH) counts as ONE message — that is the
# point of coalescing: k same-node invalidates/fetches cost one frame.
CONTROL_TYPES = ALL_TYPES + (BATCH,)


@dataclass
class TraceEvent:
    """One protocol step, recorded for the Fig 2 trace reproduction."""

    time: float
    actor: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"t={self.time:<8g} {self.actor:<14} {self.event:<16} {extras}".rstrip()


class TraceLog:
    """Append-only protocol trace shared by the runtime components."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, time: float, actor: str, event: str, **detail: Any) -> None:
        self.events.append(TraceEvent(time, actor, event, detail))

    def filter(self, actor: Optional[str] = None, event: Optional[str] = None) -> List[TraceEvent]:
        out = self.events
        if actor is not None:
            out = [e for e in out if e.actor == actor]
        if event is not None:
            out = [e for e in out if e.event == event]
        return list(out)

    def sequence(self) -> List[Tuple[str, str]]:
        """Compact (actor, event) list for assertions."""
        return [(e.actor, e.event) for e in self.events]

    def format(self) -> str:
        return "\n".join(e.format() for e in self.events)

    def to_jsonl(self) -> str:
        """One JSON object per line (for offline trace analysis)."""
        import json

        return "\n".join(
            json.dumps(
                {"time": e.time, "actor": e.actor, "event": e.event, **e.detail}
            )
            for e in self.events
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "TraceLog":
        import json

        log = cls()
        for line in text.splitlines():
            if not line.strip():
                continue
            d = json.loads(line)
            log.record(
                d.pop("time"), d.pop("actor"), d.pop("event"), **d
            )
        return log

    def __len__(self) -> int:
        return len(self.events)
