"""Object images — the unit of state exchanged by merge/extract methods.

The paper propagates *modified data* rather than operation logs ("views
represent different layouts of the same component and might not
implement the same methods", §4.1).  An :class:`ObjectImage` is a
self-describing snapshot: named data **cells** (e.g. one per flight)
plus the per-cell versions the data corresponds to.  Application
extract/merge functions produce and consume images; Flecc itself never
interprets cell contents — that is what keeps it application-neutral.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional

from repro.core.versioning import VersionVector
from repro.errors import ProtocolError
from repro.net.codec import register_codec_type


class ObjectImage:
    """A versioned snapshot of a subset of the shared data."""

    __slots__ = ("cells", "versions")

    def __init__(
        self,
        cells: Optional[Mapping[str, Any]] = None,
        versions: Optional[VersionVector] = None,
    ) -> None:
        self.cells: Dict[str, Any] = dict(cells or {})
        self.versions: VersionVector = versions.copy() if versions else VersionVector()

    # -- content ------------------------------------------------------------
    def keys(self) -> Iterable[str]:
        return self.cells.keys()

    def get(self, key: str, default: Any = None) -> Any:
        return self.cells.get(key, default)

    def put(self, key: str, value: Any, version: Optional[int] = None) -> None:
        """Set a cell; when ``version`` is omitted the local counter bumps."""
        self.cells[key] = value
        if version is None:
            self.versions.bump(key)
        else:
            self.versions.set(key, version)

    def restrict(self, keys: Iterable[str]) -> "ObjectImage":
        """Sub-image containing only ``keys`` (missing keys are skipped)."""
        keep = [k for k in keys if k in self.cells]
        img = ObjectImage({k: self.cells[k] for k in keep})
        img.versions = VersionVector({k: self.versions.get(k) for k in keep})
        return img

    def restrict_newer(self, base: VersionVector) -> "ObjectImage":
        """Sub-image of cells whose version strictly exceeds ``base``.

        The serve side of delta synchronization: the full image is the
        base image plus this delta (``base ⊕ delta ≡ full`` under
        :meth:`merge_newer`), so only the delta needs to cross the wire.
        """
        return self.restrict(
            k for k in self.cells if self.versions.get(k) > base.get(k)
        )

    def is_empty(self) -> bool:
        return not self.cells

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, key: str) -> bool:
        return key in self.cells

    # -- merging ---------------------------------------------------------------
    def merge_newer(self, incoming: "ObjectImage") -> int:
        """Cell-wise merge keeping the strictly newer version of each cell.

        This is Flecc's *default* conflict-resolution rule when the
        application does not supply its own merge function: a cell from
        ``incoming`` wins only if its version exceeds the local one
        (ties keep local — the primary copy is authoritative).  Returns
        the number of cells taken from ``incoming``.
        """
        taken = 0
        for key, value in incoming.cells.items():
            if incoming.versions.get(key) > self.versions.get(key):
                self.cells[key] = value
                self.versions.set(key, incoming.versions.get(key))
                taken += 1
        return taken

    def merge_with(
        self,
        incoming: "ObjectImage",
        resolver: Optional[Callable[[str, Any, Any], Any]] = None,
    ) -> int:
        """Merge with an application conflict resolver.

        For every cell where *both* sides changed since a common point —
        approximated as "incoming version equals local version but the
        values differ" — ``resolver(key, local_value, incoming_value)``
        picks the surviving value (Coda/Bayou-style application-level
        resolution, paper §4.1).  Newer-version cells merge as in
        :meth:`merge_newer`.
        """
        if resolver is None:
            return self.merge_newer(incoming)
        taken = 0
        for key, value in incoming.cells.items():
            local_v = self.versions.get(key)
            incoming_v = incoming.versions.get(key)
            if incoming_v > local_v:
                self.cells[key] = value
                self.versions.set(key, incoming_v)
                taken += 1
            elif incoming_v == local_v and key in self.cells and self.cells[key] != value:
                resolved = resolver(key, self.cells[key], value)
                if resolved != self.cells.get(key):
                    self.cells[key] = resolved
                    self.versions.bump(key)
                    taken += 1
        return taken

    def copy(self) -> "ObjectImage":
        return ObjectImage(self.cells, self.versions)

    # -- wire --------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        return {"cells": dict(self.cells), "versions": self.versions.to_jsonable()}

    @classmethod
    def from_jsonable(cls, d: Mapping[str, Any]) -> "ObjectImage":
        if "cells" not in d:
            raise ProtocolError(f"malformed image payload: {d!r}")
        return cls(d["cells"], VersionVector(d.get("versions", {})))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ObjectImage)
            and self.cells == other.cells
            and self.versions == other.versions
        )

    def __repr__(self) -> str:
        return f"ObjectImage({len(self.cells)} cells, {self.versions!r})"


register_codec_type(
    "flecc.object_image",
    ObjectImage,
    to_jsonable=ObjectImage.to_jsonable,
    from_jsonable=ObjectImage.from_jsonable,
)


class DeltaImage:
    """A version-filtered slice update served instead of a full image.

    ``image`` holds only the cells whose authoritative version exceeds
    the requester's synchronization base; unchanged cells stay off the
    wire.  The base is identified by a compact commit-sequence cursor
    rather than a full version vector so request and reply overhead
    stay O(1):

    - ``base_seq`` — the requester's cursor this delta was computed
      against (echoed back so a receiver that no longer holds that base
      can detect it must re-pull a full image); ``-1`` for a complete
      snapshot.
    - ``as_of`` — the directory's commit cursor after this serve; the
      receiver adopts it as its new base.
    - ``complete`` — ``True`` when ``image`` is a full snapshot of the
      slice (first contact, or fallback after quarantine/eviction,
      property change, or a cursor mismatch).
    - ``slice_size`` — live cells in the whole slice, so transports can
      account how many cells the delta skipped.
    """

    __slots__ = ("image", "base_seq", "as_of", "complete", "slice_size")

    def __init__(
        self,
        image: ObjectImage,
        base_seq: int = -1,
        as_of: int = 0,
        complete: bool = False,
        slice_size: Optional[int] = None,
    ) -> None:
        self.image = image
        self.base_seq = base_seq
        self.as_of = as_of
        self.complete = complete
        self.slice_size = len(image) if slice_size is None else slice_size

    def __len__(self) -> int:
        return len(self.image)

    def to_jsonable(self) -> dict:
        return {
            "image": self.image,
            "base_seq": self.base_seq,
            "as_of": self.as_of,
            "complete": self.complete,
            "slice_size": self.slice_size,
        }

    @classmethod
    def from_jsonable(cls, d: Mapping[str, Any]) -> "DeltaImage":
        image = d.get("image")
        if not isinstance(image, ObjectImage):
            raise ProtocolError(f"malformed delta payload: {d!r}")
        return cls(
            image,
            base_seq=d.get("base_seq", -1),
            as_of=d.get("as_of", 0),
            complete=bool(d.get("complete", False)),
            slice_size=d.get("slice_size"),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DeltaImage)
            and self.image == other.image
            and self.base_seq == other.base_seq
            and self.as_of == other.as_of
            and self.complete == other.complete
            and self.slice_size == other.slice_size
        )

    def __repr__(self) -> str:
        kind = "complete" if self.complete else f"delta base_seq={self.base_seq}"
        return (
            f"DeltaImage({len(self.image)}/{self.slice_size} cells, "
            f"{kind}, as_of={self.as_of})"
        )


register_codec_type(
    "flecc.delta_image",
    DeltaImage,
    to_jsonable=DeltaImage.to_jsonable,
    from_jsonable=DeltaImage.from_jsonable,
)
