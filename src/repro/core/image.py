"""Object images — the unit of state exchanged by merge/extract methods.

The paper propagates *modified data* rather than operation logs ("views
represent different layouts of the same component and might not
implement the same methods", §4.1).  An :class:`ObjectImage` is a
self-describing snapshot: named data **cells** (e.g. one per flight)
plus the per-cell versions the data corresponds to.  Application
extract/merge functions produce and consume images; Flecc itself never
interprets cell contents — that is what keeps it application-neutral.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional

from repro.core.versioning import VersionVector
from repro.errors import ProtocolError
from repro.net.codec import register_codec_type


class ObjectImage:
    """A versioned snapshot of a subset of the shared data."""

    __slots__ = ("cells", "versions")

    def __init__(
        self,
        cells: Optional[Mapping[str, Any]] = None,
        versions: Optional[VersionVector] = None,
    ) -> None:
        self.cells: Dict[str, Any] = dict(cells or {})
        self.versions: VersionVector = versions.copy() if versions else VersionVector()

    # -- content ------------------------------------------------------------
    def keys(self) -> Iterable[str]:
        return self.cells.keys()

    def get(self, key: str, default: Any = None) -> Any:
        return self.cells.get(key, default)

    def put(self, key: str, value: Any, version: Optional[int] = None) -> None:
        """Set a cell; when ``version`` is omitted the local counter bumps."""
        self.cells[key] = value
        if version is None:
            self.versions.bump(key)
        else:
            self.versions.set(key, version)

    def restrict(self, keys: Iterable[str]) -> "ObjectImage":
        """Sub-image containing only ``keys`` (missing keys are skipped)."""
        keep = [k for k in keys if k in self.cells]
        img = ObjectImage({k: self.cells[k] for k in keep})
        img.versions = VersionVector({k: self.versions.get(k) for k in keep})
        return img

    def is_empty(self) -> bool:
        return not self.cells

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, key: str) -> bool:
        return key in self.cells

    # -- merging ---------------------------------------------------------------
    def merge_newer(self, incoming: "ObjectImage") -> int:
        """Cell-wise merge keeping the strictly newer version of each cell.

        This is Flecc's *default* conflict-resolution rule when the
        application does not supply its own merge function: a cell from
        ``incoming`` wins only if its version exceeds the local one
        (ties keep local — the primary copy is authoritative).  Returns
        the number of cells taken from ``incoming``.
        """
        taken = 0
        for key, value in incoming.cells.items():
            if incoming.versions.get(key) > self.versions.get(key):
                self.cells[key] = value
                self.versions.set(key, incoming.versions.get(key))
                taken += 1
        return taken

    def merge_with(
        self,
        incoming: "ObjectImage",
        resolver: Optional[Callable[[str, Any, Any], Any]] = None,
    ) -> int:
        """Merge with an application conflict resolver.

        For every cell where *both* sides changed since a common point —
        approximated as "incoming version equals local version but the
        values differ" — ``resolver(key, local_value, incoming_value)``
        picks the surviving value (Coda/Bayou-style application-level
        resolution, paper §4.1).  Newer-version cells merge as in
        :meth:`merge_newer`.
        """
        if resolver is None:
            return self.merge_newer(incoming)
        taken = 0
        for key, value in incoming.cells.items():
            local_v = self.versions.get(key)
            incoming_v = incoming.versions.get(key)
            if incoming_v > local_v:
                self.cells[key] = value
                self.versions.set(key, incoming_v)
                taken += 1
            elif incoming_v == local_v and key in self.cells and self.cells[key] != value:
                resolved = resolver(key, self.cells[key], value)
                if resolved != self.cells.get(key):
                    self.cells[key] = resolved
                    self.versions.bump(key)
                    taken += 1
        return taken

    def copy(self) -> "ObjectImage":
        return ObjectImage(self.cells, self.versions)

    # -- wire --------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        return {"cells": dict(self.cells), "versions": self.versions.to_jsonable()}

    @classmethod
    def from_jsonable(cls, d: Mapping[str, Any]) -> "ObjectImage":
        if "cells" not in d:
            raise ProtocolError(f"malformed image payload: {d!r}")
        return cls(d["cells"], VersionVector(d.get("versions", {})))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ObjectImage)
            and self.cells == other.cells
            and self.versions == other.versions
        )

    def __repr__(self) -> str:
        return f"ObjectImage({len(self.cells)} cells, {self.versions!r})"


register_codec_type(
    "flecc.object_image",
    ObjectImage,
    to_jsonable=ObjectImage.to_jsonable,
    from_jsonable=ObjectImage.from_jsonable,
)
