"""Data properties (paper §4.1).

A property ``p = (name_p, D_p)`` characterizes a slice of the shared
data a view works on.  Intersection (Definition 3): empty unless the
names match, otherwise the same name with the intersected domains.
Properties are immutable and wire-encodable.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.domains import Domain, domain_from_spec
from repro.errors import PropertyError
from repro.net.codec import register_codec_type


class Property:
    """An immutable ``(name, domain)`` pair."""

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Any) -> None:
        if not name or not isinstance(name, str):
            raise PropertyError(f"property name must be a non-empty string: {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "domain", domain_from_spec(domain))

    def __setattr__(self, key: str, value: Any) -> None:
        raise PropertyError("Property is immutable")

    def intersect(self, other: "Property") -> Optional["Property"]:
        """Definition 3: ``None`` when names differ or domains are disjoint."""
        if self.name != other.name:
            return None
        common: Domain = self.domain.intersect(other.domain)
        if common.is_empty():
            return None
        return Property(self.name, common)

    def conflicts_with(self, other: "Property") -> bool:
        """Boolean form of Definition 3 without materializing the result."""
        return self.name == other.name and self.domain.overlaps(other.domain)

    def to_jsonable(self) -> dict:
        return {"name": self.name, "domain": self.domain.to_jsonable()}

    @classmethod
    def from_jsonable(cls, d: dict) -> "Property":
        return cls(d["name"], Domain.from_jsonable(d["domain"]))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Property)
            and self.name == other.name
            and self.domain == other.domain
        )

    def __hash__(self) -> int:
        return hash((self.name, self.domain))

    def __repr__(self) -> str:
        return f"Property({self.name!r}, {self.domain!r})"


register_codec_type(
    "flecc.property",
    Property,
    to_jsonable=Property.to_jsonable,
    from_jsonable=Property.from_jsonable,
)
