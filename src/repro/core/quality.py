"""Data-quality measurement (paper §5.2, Figs 5 and 6).

"The quality of the data is computed as the number of remote unseen
updates to the shared data."

The directory manager is the bookkeeping point: it stamps every
committed cell update with a version and tracks, per view, the versions
that view has seen (set whenever data is served to or collected from
the view).  :class:`QualityProbe` reads those records to report the
unseen-update count for a view, restricted to the cells the view's
properties cover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.versioning import VersionVector


@dataclass
class QualitySample:
    """One quality observation for one view."""

    time: float
    view_id: str
    unseen_updates: int
    label: str = ""


class QualityProbe:
    """Omniscient observer over directory-side version bookkeeping.

    The probe never sends messages — it exists so experiments can sample
    the paper's metric without perturbing the message counts they are
    simultaneously measuring.
    """

    def __init__(self, directory: "DirectoryManagerLike") -> None:
        self.directory = directory
        self.samples: List[QualitySample] = []

    def unseen(self, view_id: str) -> int:
        """Current unseen-update count for ``view_id``."""
        master: VersionVector = self.directory.master_versions
        seen: VersionVector = self.directory.seen_versions_of(view_id)
        keys = self.directory.slice_keys_of(view_id)
        return master.unseen_updates(seen, keys=keys)

    def sample(self, view_id: str, time: float, label: str = "") -> QualitySample:
        s = QualitySample(time, view_id, self.unseen(view_id), label)
        self.samples.append(s)
        return s

    def series(self, view_id: str) -> List[Tuple[float, int]]:
        return [
            (s.time, s.unseen_updates) for s in self.samples if s.view_id == view_id
        ]

    def mean_unseen(self, view_id: Optional[str] = None) -> float:
        chosen = [
            s for s in self.samples if view_id is None or s.view_id == view_id
        ]
        if not chosen:
            return 0.0
        return sum(s.unseen_updates for s in chosen) / len(chosen)


class DirectoryManagerLike:
    """Protocol the probe needs (satisfied by DirectoryManager)."""

    master_versions: VersionVector

    def seen_versions_of(self, view_id: str) -> VersionVector:  # pragma: no cover
        raise NotImplementedError

    def slice_keys_of(self, view_id: str) -> Optional[Iterable[str]]:  # pragma: no cover
        raise NotImplementedError
