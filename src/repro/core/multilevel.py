"""Extension: the two-level protocol (paper §6, direction 2).

"Flecc could be extended on two levels.  The high level protocol would
maintain consistency between various instances in a decentralized
fashion (e.g. no primary-copy), while the low level protocol would be
[the] current version of Flecc and would ensure consistency between
components and their views."

This module implements that high level: each original-component
instance keeps its own :class:`~repro.core.directory.DirectoryManager`
(the unmodified low-level Flecc), and a :class:`ReplicaCoordinator`
beside each directory runs decentralized **anti-entropy** rounds with
its peers.  Updates are ordered per cell by ``(version, origin)`` —
version counters from the low level, replica name as the deterministic
tie-break for concurrent updates — so all replicas converge to the same
state once updates quiesce (eventual consistency across instances;
one-copy semantics remain available *within* an instance).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.directory import DirectoryManager
from repro.core.image import ObjectImage
from repro.core.property_set import PropertySet
from repro.errors import ProtocolError
from repro.net.message import Message
from repro.net.transport import Completion, Transport

ANTI_ENTROPY = "ANTI_ENTROPY"
ANTI_ENTROPY_REPLY = "ANTI_ENTROPY_REPLY"


class ReplicaCoordinator:
    """Decentralized synchronizer for one original-component instance.

    Attach one per directory; call :meth:`sync_with` for an explicit
    round or :meth:`start` for periodic round-robin gossip.  The
    coordinator watches local commits through the directory's
    ``on_commit`` hook to stamp each cell with this replica's name.
    """

    def __init__(
        self,
        transport: Transport,
        name: str,
        directory: DirectoryManager,
        peers: Optional[List[str]] = None,
        sync_period: float = 50.0,
    ) -> None:
        if directory.on_commit is not None:
            raise ProtocolError(
                f"directory {directory.address} already has an on_commit hook"
            )
        self.transport = transport
        self.name = name
        self.directory = directory
        self.peers: List[str] = list(peers or [])
        self.sync_period = sync_period
        self.address = f"sync:{name}"
        # cell -> origin replica of its latest update
        self.origins: Dict[str, str] = {}
        self._next_peer = 0
        self._timer = None
        self._stopped = False
        self._pending: Dict[int, Completion] = {}
        self.rounds_completed = 0
        directory.on_commit = self._on_local_commit
        self.endpoint = transport.bind(self.address, self._on_message)

    # -- local bookkeeping ---------------------------------------------------
    def _on_local_commit(self, key: str, version: int) -> None:
        self.origins[key] = self.name

    def _snapshot(self) -> Tuple[ObjectImage, Dict[str, str]]:
        """Full image of the component with authoritative versions."""
        image = self.directory.extract_from_object(
            self.directory.component, PropertySet()
        )
        for key in image.keys():
            image.versions.set(key, self.directory.master_versions.get(key))
        return image, dict(self.origins)

    def _ordering_key(self, version: int, origin: str) -> Tuple[int, str]:
        return (version, origin)

    def _absorb(self, image: ObjectImage, origins: Dict[str, str]) -> int:
        """Apply incoming cells that are newer under (version, origin)."""
        applied = ObjectImage()
        for key in image.keys():
            local = self._ordering_key(
                self.directory.master_versions.get(key),
                self.origins.get(key, ""),
            )
            incoming = self._ordering_key(
                image.versions.get(key), origins.get(key, "")
            )
            if incoming > local:
                applied.cells[key] = image.get(key)
        if applied.is_empty():
            return 0
        self.directory.merge_into_object(
            self.directory.component, applied, PropertySet()
        )
        for key in applied.keys():
            self.directory.master_versions.set(key, image.versions.get(key))
            self.origins[key] = origins.get(key, "")
        # Anti-entropy writes bypass _commit: cached slice key lists may
        # now miss absorbed cells, so drop them all.
        self.directory.invalidate_slice_index()
        return len(applied)

    # -- protocol ----------------------------------------------------------------
    def sync_with(self, peer_name: str) -> Completion:
        """One full anti-entropy exchange with ``peer_name``.

        Resolves with the number of cells this replica absorbed.
        """
        image, origins = self._snapshot()
        msg = Message(
            ANTI_ENTROPY,
            self.address,
            f"sync:{peer_name}",
            {"image": image, "origins": origins, "replica": self.name},
        )
        comp = self.transport.completion(f"{self.name}.sync")
        self._pending[msg.msg_id] = comp
        self.endpoint.send(msg)
        return comp

    def _on_message(self, msg: Message) -> None:
        if msg.msg_type == ANTI_ENTROPY:
            # Absorb the initiator's state, answer with ours.
            incoming: ObjectImage = msg.payload["image"]
            self._absorb(incoming, msg.payload.get("origins", {}))
            image, origins = self._snapshot()
            self.endpoint.send(
                msg.reply(
                    ANTI_ENTROPY_REPLY,
                    {"image": image, "origins": origins, "replica": self.name},
                )
            )
        elif msg.msg_type == ANTI_ENTROPY_REPLY:
            comp = self._pending.pop(msg.reply_to, None)
            absorbed = self._absorb(
                msg.payload["image"], msg.payload.get("origins", {})
            )
            self.rounds_completed += 1
            if comp is not None:
                comp.resolve(absorbed)

    # -- periodic gossip --------------------------------------------------------
    def start(self) -> None:
        """Begin periodic round-robin anti-entropy with the peer list."""
        if not self.peers:
            raise ProtocolError(f"{self.name}: no peers to gossip with")
        self._stopped = False
        self._schedule()

    def _schedule(self) -> None:
        if self._stopped:
            return
        self._timer = self.transport.schedule(self.sync_period, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        peer = self.peers[self._next_peer % len(self.peers)]
        self._next_peer += 1
        try:
            self.sync_with(peer)
        finally:
            self._schedule()

    def stop(self) -> None:
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def close(self) -> None:
        self.stop()
        self.endpoint.close()


def converged(coordinators: List[ReplicaCoordinator]) -> bool:
    """True when all replicas hold identical state (test/monitor aid)."""
    if len(coordinators) < 2:
        return True
    snapshots = []
    for c in coordinators:
        image, _ = c._snapshot()
        snapshots.append((dict(image.cells), image.versions))
    first_cells, first_versions = snapshots[0]
    return all(
        cells == first_cells and versions == first_versions
        for cells, versions in snapshots[1:]
    )
