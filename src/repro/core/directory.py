"""The directory manager (paper §4.2).

One directory manager runs with the original component (the primary
copy).  It tracks which views are registered and *active*, decides who
conflicts with whom (static map + ``dynConfl``), revokes/collects state
with INVALIDATE rounds, gathers fresh state from active views with
FETCH rounds, merges pushed updates into the original component via the
application's merge function, and stamps every committed cell update
with a version (the basis of the data-quality metric).

Concurrency discipline: operations that require a multi-message round
(ACQUIRE, and PULL/INIT that must first revoke or fetch) go through a
**conflict-aware round scheduler**.  In the default serial mode
(``concurrent_rounds=1``) that is exactly the paper's discipline — one
op at a time through a FIFO queue, the centralized primary copy as the
natural serialization point.  With ``concurrent_rounds`` > 1 (or 0 =
unbounded) the scheduler keeps an in-flight op table and starts a new
round immediately whenever its *scope* — the requesting view plus its
conflict set (``ConflictIndex`` candidates, static-SHARED partners,
exclusive holders) — is disjoint from every running round's scope and
from every conflicting op queued ahead of it (no barging: ops of one
conflict group never reorder, so each group still sees the serial
order).  Waiting ops hold no slot and rounds always terminate (CM ACKs
or the round watchdog), so there are no wait cycles — the same
strictly-decreasing-priority argument the ShardRouter's INVALIDATE
hold/disturb protocol makes.  Commits stay linearized: every committed
cell passes through ``_commit`` under the directory lock, so
``commit_seq`` (and the WAL's per-lineage commit order) remains a
single monotone sequence.  Single-message operations (REGISTER, PUSH,
SET_MODE, ...) are handled immediately, as before.
"""

from __future__ import annotations

import heapq
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.core import messages as M
from repro.core.conflicts import ConflictPolicy
from repro.core.durability import DurabilityManager, DurabilitySpec
from repro.core.image import DeltaImage, ObjectImage
from repro.core.messages import TraceLog
from repro.core.modes import Mode
from repro.core.profiling import DirectoryProfiler, clock_ns as _clock_ns
from repro.core.property_set import PropertySet
from repro.core.static_map import StaticSharingMap
from repro.core.versioning import VersionVector
from repro.errors import ProtocolError, TransportError
from repro.net.message import Message, make_batch
from repro.net.transport import Transport

# Application-facing function signatures (paper Fig 3):
#   extract_from_object(component, view_property_list) -> ObjectImage
#   merge_into_object(component, image, view_property_list) -> None
ExtractFromObject = Callable[[Any, PropertySet], ObjectImage]
MergeIntoObject = Callable[[Any, ObjectImage, PropertySet], None]
# Optional partial-materialization hook for delta serves:
#   extract_cells(component, view_property_list, keys) -> ObjectImage
# When absent, delta serves fall back to a full extract restricted to
# the changed keys (correct, but pays the full materialization cost).
ExtractCells = Callable[[Any, PropertySet, List[str]], ObjectImage]


class ViewRecord:
    """Directory-side registration state for one view.

    ``active`` and ``exclusive`` are notifying properties: once a
    directory adopts the record (``_owner``), every flag assignment —
    including direct mutation from tests or subclasses — updates the
    directory's maintained activity sets, so ``active_views`` /
    ``exclusive_views`` / ``check_invariants`` never need a registry
    scan.
    """

    __slots__ = (
        "view_id", "address", "properties", "mode", "triggers",
        "_active", "_exclusive", "seen", "last_state_seq",
        "lease_expires", "synced", "last_served_seq", "_owner",
    )

    def __init__(
        self,
        view_id: str,
        address: str,
        properties: PropertySet,
        mode: Mode,
        triggers: Optional[Dict[str, Optional[str]]] = None,
        active: bool = False,
        exclusive: bool = False,
        seen: Optional[VersionVector] = None,
        last_state_seq: int = 0,
        lease_expires: float = float("inf"),
        synced: bool = False,
        last_served_seq: int = -1,
    ) -> None:
        self.view_id = view_id
        self.address = address
        self.properties = properties
        self.mode = mode
        self.triggers = {} if triggers is None else triggers
        self._owner: Optional["DirectoryManager"] = None
        self._active = bool(active)
        self._exclusive = bool(exclusive)
        self.seen = VersionVector() if seen is None else seen
        # Highest state sequence number committed from this view; images
        # stamped with an older/equal seq are stale retransmissions.
        self.last_state_seq = last_state_seq
        # Lease-based failure detection: transport time after which the
        # view is presumed crashed (inf when leases are disabled).  Renewed
        # by HEARTBEAT and by every message carrying the view's id.
        self.lease_expires = lease_expires
        # Delta synchronization cursors: ``synced`` flips true once this
        # view has received a complete slice image (first contact and
        # recovery re-sync always serve full); ``last_served_seq`` is the
        # directory commit cursor echoed to the view on its last serve — a
        # request whose ``since`` cursor does not match is served a full
        # image (the requester's base can no longer be trusted).
        self.synced = synced
        self.last_served_seq = last_served_seq

    @property
    def active(self) -> bool:
        return self._active

    @active.setter
    def active(self, value: bool) -> None:
        self._active = bool(value)
        if self._owner is not None:
            self._owner._note_activity(self)

    @property
    def exclusive(self) -> bool:
        return self._exclusive

    @exclusive.setter
    def exclusive(self, value: bool) -> None:
        self._exclusive = bool(value)
        if self._owner is not None:
            self._owner._note_activity(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ViewRecord({self.view_id!r}, mode={self.mode}, "
            f"active={self._active}, exclusive={self._exclusive})"
        )


@dataclass
class QuarantinedView:
    """Reconciliation state stashed when a view is presumed dead.

    Instead of silently discarding a silent/crashed view's context (the
    old ``_expire_round`` behavior), the directory quarantines it: the
    last committed image of the view's slice, its seen-versions and
    state sequence cursor, and — for round timeouts — the operation it
    was blocking.  A recovering cache manager that re-REGISTERs with
    the same view id reconciles against this entry instead of starting
    from a blank record (which would mis-classify its retransmissions).
    """

    view_id: str
    address: str
    properties: PropertySet
    mode: Mode
    seen: VersionVector
    last_state_seq: int
    image: ObjectImage
    reason: str                      # 'round-timeout' | 'lease-expired'
    time: float
    op_context: Optional[Dict[str, Any]] = None


@dataclass
class _PendingOp:
    """A queued multi-message operation."""

    kind: str  # 'acquire' | 'pull' | 'init'
    request: Message
    view_id: str
    awaiting: Dict[int, str] = field(default_factory=dict)  # msg_id -> view_id
    need_fresh: bool = False
    # Scheduler bookkeeping: ``seq`` keys the in-flight op table (0 =
    # never started), ``scope`` is the independence footprint frozen at
    # round start, ``enqueued_ns`` feeds the queue_wait profiler phase,
    # and ``waited`` dedups the sched_conflict_waits counter per op.
    seq: int = 0
    scope: Optional[frozenset] = None
    enqueued_ns: int = 0
    waited: bool = False


class DirectoryManager:
    """Primary-copy coordinator for one original component."""

    def __init__(
        self,
        transport: Transport,
        address: str,
        component: Any,
        extract_from_object: ExtractFromObject,
        merge_into_object: MergeIntoObject,
        static_map: Optional[StaticSharingMap] = None,
        conflict_resolver: Optional[Callable[[str, Any, Any], Any]] = None,
        trace: Optional[TraceLog] = None,
        on_commit: Optional[Callable[[str, int], None]] = None,
        round_timeout: Optional[float] = None,
        dedup_window: int = 256,
        coalesce_rounds: bool = False,
        lease_duration: Optional[float] = None,
        delta: bool = True,
        extract_cells: Optional[ExtractCells] = None,
        key_filter: Optional[Callable[[str], bool]] = None,
        durability: Optional["DurabilitySpec | DurabilityManager"] = None,
        conflict_index: bool = True,
        profile: bool = False,
        concurrent_rounds: int = 1,
    ) -> None:
        self.transport = transport
        # Round-scheduler concurrency: 1 (the default) is the paper's
        # serial discipline — one multi-message round at a time through
        # the FIFO, behavior-identical to the pre-scheduler directory.
        # N > 1 bounds the in-flight op table at N rounds; 0 means
        # unbounded (every independent round starts immediately).
        self.concurrent_rounds = concurrent_rounds
        # Sharded-plane guard: when this directory is one shard of a
        # partitioned primary copy, only cells the predicate accepts are
        # committed here.  A foreign-key commit would bump versions the
        # owning shard never sees and silently fork the version history.
        self.key_filter = key_filter
        # Delta synchronization: serve version-filtered delta images to
        # requesters that attach a ``since`` cursor, instead of the full
        # property slice.  Off → every serve ships the full image (the
        # paper's baseline behavior); logical message counts are
        # identical either way, only payload contents change.
        self.delta = delta
        self.extract_cells = extract_cells
        # When enabled, a round's fan-out (the per-conflicting-view
        # INVALIDATE / FETCH_REQ messages of one operation) is grouped
        # by destination node and each group ships as a single BATCH
        # frame; the receiving transport splits it, so cache managers
        # are oblivious.  Replies still arrive individually.
        self.coalesce_rounds = coalesce_rounds
        # A multi-message round (invalidate/fetch) that waits longer
        # than round_timeout on a silent view is force-finalized: the
        # silent targets are dropped from the round (their state is
        # treated as lost).  None disables the watchdog.
        self.round_timeout = round_timeout
        # Lease-based failure detection: a registered view must renew
        # its lease (HEARTBEAT, or any message carrying its view id)
        # within lease_duration transport units, or it is evicted —
        # deactivated, stripped of strong-mode exclusivity, removed
        # from in-flight rounds, and quarantined for later recovery.
        # None disables the detector.
        self.lease_duration = lease_duration
        self.quarantined: Dict[str, QuarantinedView] = {}
        self._lease_timer_armed = False
        self._lease_timer = None
        # Lease-expiry min-heap with lazy deletion: at most one
        # (expiry, view_id) entry per view (membership tracked in
        # _lease_heaped).  Renewals do not touch the heap — a popped
        # entry whose view is still alive is re-pushed at its current
        # expiry, so each expiry sweep does O(log V) work per candidate
        # instead of scanning the whole registry every half-lease tick.
        self._lease_heap: List[tuple] = []
        self._lease_heaped: set = set()
        # At-least-once delivery tolerance: replies to the most recent
        # requests are cached by msg_id and re-sent verbatim when a
        # duplicate request arrives (instead of re-executing it).
        self._dedup_window = dedup_window
        self._reply_cache: "OrderedDict[int, Message]" = OrderedDict()
        # Invoked as on_commit(cell_key, new_version) for every locally
        # committed cell update (used by the two-level extension).
        self.on_commit = on_commit
        self.address = address
        self.component = component
        self.extract_from_object = extract_from_object
        self.merge_into_object = merge_into_object
        self.static_map = static_map
        self.conflict_resolver = conflict_resolver
        self.trace = trace
        self.views: Dict[str, ViewRecord] = {}
        self.master_versions = VersionVector()
        # Monotone commit cursor: advances with every committed cell.
        # Serves echo it (DeltaImage.as_of) and requesters send it back
        # (``since``) so base identity is one integer on the wire, not
        # a full version vector.
        self.commit_seq = 0
        # Slice key index: view_id -> tuple of live cell keys in that
        # view's property slice.  Built lazily from one full extract,
        # then consulted by delta serves, live_keys/slice_keys_of and
        # register replies; invalidated per view on (re)register /
        # PROP_UPDATE / unregister / evict, and globally when a commit
        # introduces a cell key the index has never seen.
        self._slice_index: Dict[str, tuple] = {}
        self._known_keys: set = set()
        # Conflict policy: indexed mode (the default) maintains the
        # property-key inverted index and scoped invalidation; off, the
        # pre-index brute-force path (full-registry candidate scans +
        # whole-cache generation bumps) is preserved as the A/B baseline.
        self.policy = ConflictPolicy(
            static_map, self._properties_of, indexed=conflict_index
        )
        # Maintained activity sets, updated by ViewRecord's notifying
        # flag setters (see _note_activity): who is active, and who
        # holds strong-mode exclusivity, without registry scans.
        self._active_set: set = set()
        self._exclusive_set: set = set()
        # Op-path profiler (core/profiling.py): None unless profile=True,
        # so the hot paths pay one `is None` test when off.
        self.profiler: Optional[DirectoryProfiler] = (
            DirectoryProfiler(stats=transport.stats) if profile else None
        )
        # Conflict-aware round scheduler state.  Waiting ops sit in one
        # FIFO (per-conflict-group order falls out of the no-barging
        # scan in _schedule_ready); running ops live in the in-flight
        # table keyed by start sequence, and _round_ops maps every
        # outstanding round message id to its owning op so replies
        # dispatch in O(1) regardless of how many rounds are in flight.
        self._op_queue: Deque[_PendingOp] = deque()
        self._running: Dict[int, _PendingOp] = {}
        self._round_ops: Dict[int, _PendingOp] = {}
        self._op_seq = 0
        self._pumping = False
        self._pump_again = False
        # Operational counters for experiments and monitoring.
        self.counters: Dict[str, int] = {
            "registers": 0, "unregisters": 0, "pushes": 0,
            "commits": 0, "rounds": 0, "invalidates_sent": 0,
            "fetches_sent": 0, "grants": 0, "round_timeouts": 0,
            "rounds_quarantined": 0, "leases_expired": 0,
            "recoveries": 0, "heartbeats": 0, "send_errors": 0,
            "delta_serves": 0, "full_serves": 0, "delta_degraded": 0,
            "slice_index_hits": 0, "slice_index_builds": 0,
            "partial_extracts": 0, "regrants": 0,
            "commits_durable": 0, "commits_volatile": 0,
            "wal_recoveries": 0, "cells_replayed": 0,
            "recovery_reclaims": 0, "reclaim_timeouts": 0,
            "index_candidates": 0, "scoped_invalidations": 0,
            "lease_heap_pops": 0,
            # Round-scheduler instrumentation: high-water mark of
            # simultaneously running rounds, rounds that started while
            # another was already in flight, ops that had to wait on a
            # conflicting round, and handler faults fenced off by the
            # per-op slot release (satellite of the scheduler work).
            "concurrent_rounds_hwm": 0, "rounds_overlapped": 0,
            "sched_conflict_waits": 0, "round_faults": 0,
            "serve_faults": 0,
        }
        self._lock = threading.RLock()  # no-op contention in sim; needed on TCP
        # Recovery ownership reclaim: views recovered holding strong-mode
        # exclusivity may hold dirty state newer than anything in the WAL
        # (their handoff rides an INVALIDATE_ACK that can die with the
        # directory process).  Until each answers a full-slice fetch (or
        # the reclaim window expires), queued ops stay blocked.
        self._reclaim_needed: List[str] = []
        self._reclaim_fetches: Dict[int, str] = {}
        # Durable primary copy: opening the lineage performs recovery
        # (snapshot + WAL tail), which must land before the endpoint
        # binds — a request that raced recovery could read the blank
        # pre-replay state.
        self.durability: Optional[DurabilityManager] = None
        if durability is not None:
            self.durability = (
                durability
                if isinstance(durability, DurabilityManager)
                else DurabilityManager(durability)
            )
            self._recover_durable_state()
        self.endpoint = transport.bind(address, self._on_message)
        if self._reclaim_needed:
            self._start_recovery_reclaim()

    # ------------------------------------------------------------------
    # Introspection used by experiments / QualityProbe
    # ------------------------------------------------------------------
    def _properties_of(self, view_id: str) -> Optional[PropertySet]:
        rec = self.views.get(view_id)
        return rec.properties if rec else None

    def seen_versions_of(self, view_id: str) -> VersionVector:
        rec = self.views.get(view_id)
        return rec.seen if rec else VersionVector()

    def slice_keys_of(self, view_id: str) -> Optional[List[str]]:
        """Cell keys covered by a view's properties (slice key index)."""
        rec = self.views.get(view_id)
        if rec is None:
            return None
        return list(self._slice_keys(view_id))

    def live_keys(self, view_id: str) -> Optional[List[str]]:
        """Live cell keys of a view's slice, served from the index."""
        return self.slice_keys_of(view_id)

    # ------------------------------------------------------------------
    # Slice key index
    # ------------------------------------------------------------------
    def _slice_keys(self, view_id: str) -> tuple:
        """Live keys of a view's slice; one full extract per (view,
        membership) epoch, index hits afterwards."""
        keys = self._slice_index.get(view_id)
        if keys is not None:
            self.counters["slice_index_hits"] += 1
            return keys
        rec = self.views.get(view_id)
        if rec is None:
            return ()
        keys = tuple(
            self.extract_from_object(self.component, rec.properties).keys()
        )
        self._slice_index[view_id] = keys
        self._known_keys.update(keys)
        self.counters["slice_index_builds"] += 1
        return keys

    def invalidate_slice_index(self, view_id: Optional[str] = None) -> None:
        """Drop cached slice keys (one view's entry, or all of them).

        External writers that commit outside :meth:`_commit` — e.g. the
        multilevel replica coordinator's anti-entropy absorb — must call
        this after introducing cells, or the index can serve stale keys.
        """
        if view_id is None:
            self._slice_index.clear()
        else:
            self._slice_index.pop(view_id, None)

    # ------------------------------------------------------------------
    # Maintained activity sets
    # ------------------------------------------------------------------
    def _adopt(self, rec: ViewRecord) -> None:
        """Install a record in the registry and start tracking its
        activity flags in the maintained sets."""
        self.views[rec.view_id] = rec
        rec._owner = self
        self._note_activity(rec)

    def _release(self, view_id: str) -> Optional[ViewRecord]:
        """Remove a record from the registry and the activity sets."""
        rec = self.views.pop(view_id, None)
        if rec is not None:
            rec._owner = None
            self._active_set.discard(view_id)
            self._exclusive_set.discard(view_id)
        return rec

    def _note_activity(self, rec: ViewRecord) -> None:
        """ViewRecord flag-setter callback: sync the maintained sets."""
        vid = rec.view_id
        if rec._active:
            self._active_set.add(vid)
        else:
            self._active_set.discard(vid)
        if rec._exclusive:
            self._exclusive_set.add(vid)
        else:
            self._exclusive_set.discard(vid)

    def active_views(self) -> List[str]:
        return sorted(self._active_set)

    def exclusive_views(self) -> List[str]:
        return sorted(self._exclusive_set)

    def registered_views(self) -> List[str]:
        return sorted(self.views)

    def conflict_set_of(self, view_id: str) -> List[str]:
        """Registered views conflicting with ``view_id`` (any activity).

        Indexed policy: candidates come from the inverted index and the
        result is cached per (generation, membership-stamp) — no
        registry scan, no O(V) tuple key.  Brute-force policy (the A/B
        baseline): the legacy full-candidate-list path.
        """
        if self.policy.indexed:
            result = self.policy.conflict_set(view_id)
            self.counters["index_candidates"] = self.policy.index_candidates
            return result
        return self.policy.conflict_set(view_id, self.views.keys())

    def _sync_policy_counters(self) -> None:
        """Mirror the policy's index instrumentation into counters."""
        self.counters["index_candidates"] = self.policy.index_candidates
        self.counters["scoped_invalidations"] = self.policy.scoped_invalidations

    def check_invariants(self) -> None:
        """Raise ProtocolError when a protocol invariant is broken.

        Strong-mode invariant: an exclusive owner has no conflicting
        active view (one-copy serializability, paper §4).  Driven from
        the maintained exclusive set and the conflict index, so the
        check costs O(owners x conflict degree), not O(V^2) — usable
        as a per-op assertion even at 10k registered views.
        """
        for vid in sorted(self._exclusive_set):
            rec = self.views.get(vid)
            if rec is None:
                continue
            if not rec.active:
                raise ProtocolError(f"{vid} exclusive but not active")
            for other in self.conflict_set_of(vid):
                if other in self._active_set:
                    raise ProtocolError(
                        f"strong-mode violation: {vid} owns exclusively "
                        f"but conflicting {other} is active"
                    )

    # ------------------------------------------------------------------
    # Lease-based failure detection & quarantine
    # ------------------------------------------------------------------
    def _renew_lease(self, rec: ViewRecord) -> None:
        if self.lease_duration is None:
            return
        rec.lease_expires = self.transport.now() + self.lease_duration
        if rec.view_id not in self._lease_heaped:
            # First contact (or the view's entry was lazily retired):
            # one heap entry per view.  Renewals never touch the heap —
            # the entry's time only under-estimates the true expiry, so
            # the sweep re-pushes it at the current lease on pop.
            self._lease_heaped.add(rec.view_id)
            heapq.heappush(
                self._lease_heap, (rec.lease_expires, rec.view_id)
            )

    def _arm_lease_checker(self) -> None:
        """Arm the periodic expiry sweep (only while views are registered,
        so an idle directory does not keep the sim event queue alive)."""
        if (
            self.lease_duration is None
            or self._lease_timer_armed
            or not self.views
        ):
            return
        self._lease_timer_armed = True
        self._lease_timer = self.transport.schedule(
            self.lease_duration / 2.0, self._check_leases
        )

    def _check_leases(self) -> None:
        """Expiry sweep over the lease heap (lazy deletion).

        Pops only entries whose recorded time has passed: an idle tick
        against V live views inspects one heap head and stops —
        O(1) — while each actual expiry or stale entry costs one
        O(log V) pop.  The old implementation rescanned every record
        on every half-lease tick.
        """
        with self._lock:
            self._lease_timer_armed = False
            now = self.transport.now()
            heap = self._lease_heap
            while heap and heap[0][0] < now:
                _, vid = heapq.heappop(heap)
                self.counters["lease_heap_pops"] += 1
                self._lease_heaped.discard(vid)
                rec = self.views.get(vid)
                if rec is None:
                    continue  # unregistered/evicted: entry was stale
                if now > rec.lease_expires:
                    self.counters["leases_expired"] += 1
                    self._trace("lease-expired", view=vid)
                    self._evict_view(vid, reason="lease-expired")
                else:
                    # Renewed since the entry was pushed: re-push at the
                    # current expiry.
                    self._lease_heaped.add(vid)
                    heapq.heappush(heap, (rec.lease_expires, vid))
            self._arm_lease_checker()

    def _quarantine_view(
        self, rec: ViewRecord, reason: str,
        op_context: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Stash a presumed-dead view's reconciliation state."""
        self.quarantined[rec.view_id] = QuarantinedView(
            view_id=rec.view_id,
            address=rec.address,
            properties=rec.properties,
            mode=rec.mode,
            seen=rec.seen,
            last_state_seq=rec.last_state_seq,
            # Last committed image of the view's slice: what the primary
            # copy holds for it — the recovery baseline for re-sync.
            image=self.extract_from_object(self.component, rec.properties),
            reason=reason,
            time=self.transport.now(),
            op_context=op_context,
        )

    def _evict_view(self, view_id: str, reason: str) -> None:
        """Presume a view dead: quarantine it and release its holds.

        Reclaims strong-mode exclusivity (the evicted owner's token
        returns to the directory), invalidates the conflict index, and
        removes the view from any in-flight round so the requester is
        not blocked by a corpse.
        """
        rec = self.views.get(view_id)
        if rec is None:
            return
        self._quarantine_view(rec, reason=reason)
        # Scoped invalidation precedes the static-map removal: the
        # policy still needs the map row to find SHARED partners.
        self.policy.unregister_view(view_id)
        self._release(view_id)
        if self.static_map is not None and self.static_map.has_view(view_id):
            self.static_map.remove_view(view_id)
        self._sync_policy_counters()
        self.invalidate_slice_index(view_id)
        self._forget_in_rounds(view_id)
        self._log({"k": "evict", "v": view_id, "reason": reason})

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def _on_message(self, msg: Message) -> None:
        with self._lock:
            self._dispatch(msg)

    # Requests whose duplicates are answered from the reply cache.  The
    # round-based requests (ACQUIRE, INIT_REQ, PULL_REQ) are *not* here:
    # replaying a cached GRANT/IMAGE would serve stale data — and, for
    # ACQUIRE, stale *ownership* (a one-copy violation if the token
    # moved meanwhile).  They are idempotent at the directory, so their
    # duplicates are simply re-executed against current state.
    _REPLAYABLE = frozenset(
        {M.REGISTER, M.UNREGISTER, M.PUSH, M.SET_MODE, M.PROP_UPDATE,
         M.HEARTBEAT}
    )

    def _dispatch(self, msg: Message) -> None:
        self._trace(msg.msg_type, view=msg.payload.get("view_id", msg.src))
        if msg.msg_id in self._reply_cache:
            if msg.msg_type in self._REPLAYABLE:
                self._trace("duplicate-request", msg_id=msg.msg_id)
                self._send(self._reply_cache[msg.msg_id])
                return
            # Round-based duplicate: drop the stale cached reply and
            # re-execute below.
            self._trace("duplicate-reexecute", msg_id=msg.msg_id)
            del self._reply_cache[msg.msg_id]
        handler = {
            M.REGISTER: self._h_register,
            M.INIT_REQ: self._h_init,
            M.PULL_REQ: self._h_pull,
            M.PUSH: self._h_push,
            M.ACQUIRE: self._h_acquire,
            M.SET_MODE: self._h_set_mode,
            M.PROP_UPDATE: self._h_prop_update,
            M.UNREGISTER: self._h_unregister,
            M.HEARTBEAT: self._h_heartbeat,
            M.INVALIDATE_ACK: self._h_round_reply,
            M.FETCH_REPLY: self._h_round_reply,
        }.get(msg.msg_type)
        if handler is None:
            self._reply(msg, M.ERROR, {"error": f"unknown type {msg.msg_type}"})
            return
        try:
            handler(msg)
        except ProtocolError as exc:
            # E.g. a late duplicate from a view that has already
            # unregistered: answer instead of tearing down the loop.
            if msg.msg_type in M.REQUESTS:
                self._reply(msg, M.ERROR, {"error": str(exc)})
            else:
                self._trace("handler-error", error=str(exc))

    def _send(self, msg: Message) -> None:
        self._trace(f"send:{msg.msg_type}", dst=msg.dst)
        try:
            self.endpoint.send(msg)
        except TransportError as exc:
            # A wire failure mid-dispatch (e.g. the TCP peer vanished
            # between the connect and the write) must not propagate
            # into the handler and wedge an in-flight op slot: record
            # the loss and let the round watchdog / CM retransmission
            # recover.
            self.counters["send_errors"] += 1
            self.transport.stats.record_drop(msg)
            self._trace("send-error", dst=msg.dst, error=str(exc))

    def _reply(self, request: Message, msg_type: str, payload: Optional[Dict[str, Any]] = None) -> None:
        """Answer ``request``, caching the reply for duplicate deliveries."""
        if self.durability is not None:
            # No ack-before-durable window: under fsync=always every WAL
            # append synced inline, and this guard closes any path (e.g.
            # a coalesced round finalizing several commits) where an
            # acknowledgment could otherwise overtake the fsync.
            self.durability.ensure_ack_durable()
        reply = request.reply(msg_type, payload)
        self._reply_cache[request.msg_id] = reply
        while len(self._reply_cache) > self._dedup_window:
            self._reply_cache.popitem(last=False)
        self._send(reply)

    def _trace(self, event: str, **detail: Any) -> None:
        if self.trace is not None:
            self.trace.record(self.transport.now(), self.address, event, **detail)

    def _record_for(self, msg: Message) -> ViewRecord:
        view_id = msg.payload.get("view_id")
        rec = self.views.get(view_id)
        if rec is None:
            raise ProtocolError(
                f"message {msg.msg_type} from unregistered view {view_id!r}"
            )
        self._renew_lease(rec)
        return rec

    # -- immediate operations -------------------------------------------------
    def _h_register(self, msg: Message) -> None:
        prof = self.profiler
        t0 = _clock_ns() if prof is not None else 0
        p = msg.payload
        view_id = p["view_id"]
        recovering = bool(p.get("recover", False))
        if view_id in self.views and not recovering:
            self._reply(msg, M.ERROR, {"error": f"{view_id} already registered"})
            return
        rec = ViewRecord(
            view_id=view_id,
            address=msg.src,
            properties=p.get("properties") or PropertySet(),
            mode=Mode.parse(p.get("mode", Mode.WEAK)),
            triggers=p.get("triggers") or {},
        )
        recovered = False
        if recovering:
            # Idempotent re-REGISTER after a crash: reconcile against
            # the live record (lease not yet expired) or the quarantine
            # entry (evicted/round-dropped), so the directory's dedup
            # cursors survive the restart instead of mis-classifying
            # the recovered CM's traffic as stale retransmissions.
            prior = self.views.get(view_id)
            stash = self.quarantined.pop(view_id, None)
            if prior is not None:
                rec.seen = prior.seen
                rec.last_state_seq = prior.last_state_seq
                recovered = True
            elif stash is not None:
                rec.seen = stash.seen
                rec.last_state_seq = stash.last_state_seq
                recovered = True
            if recovered:
                self.counters["recoveries"] += 1
                self._trace("view-recovered", view=view_id)
        self._adopt(rec)
        self._renew_lease(rec)
        self.counters["registers"] += 1
        if self.static_map is not None and not self.static_map.has_view(view_id):
            self.static_map.add_view(view_id)
        # Scoped invalidation: only this view's conflict neighborhood
        # is re-stamped (a whole-cache bump in brute-force mode).
        self.policy.register_view(view_id, rec.properties)
        self._sync_policy_counters()
        self.invalidate_slice_index(view_id)  # properties may differ
        self._arm_lease_checker()
        self._log({"k": "register", **self._view_state(rec)})
        if prof is not None:
            prof.record("register", _clock_ns() - t0)
        self._reply(
            msg,
            M.REGISTER_ACK,
            {
                "view_id": view_id,
                "recovered": recovered,
                # The CM resumes its state-seq numbering above this so
                # post-recovery pushes are not dropped as stale.
                "last_state_seq": rec.last_state_seq,
                "lease": self.lease_duration,
                # Live cells the view's properties cover right now (from
                # the slice key index) — lets the CM size its caches.
                "slice_size": len(self._slice_keys(view_id)),
            },
        )

    def _h_heartbeat(self, msg: Message) -> None:
        rec = self._record_for(msg)  # renews the lease
        self.counters["heartbeats"] += 1
        self._reply(
            msg,
            M.HEARTBEAT_ACK,
            {"view_id": rec.view_id, "lease": self.lease_duration},
        )

    def _h_push(self, msg: Message) -> None:
        rec = self._record_for(msg)
        image: ObjectImage = msg.payload.get("image") or ObjectImage()
        self.counters["pushes"] += 1
        committed = self._commit(rec, image, seq=msg.payload.get("state_seq"))
        self._reply(msg, M.PUSH_ACK, {"committed": committed})

    def _h_set_mode(self, msg: Message) -> None:
        rec = self._record_for(msg)
        new_mode = Mode.parse(msg.payload["mode"])
        old_mode = rec.mode
        rec.mode = new_mode
        if new_mode is Mode.WEAK and rec.exclusive:
            # Leaving strong mode releases exclusivity; dirty state was
            # pushed by the cache manager before it sent SET_MODE.
            rec.exclusive = False
        self._log_cursors(rec)
        self._reply(
            msg,
            M.SET_MODE_ACK,
            {"mode": new_mode.value, "previous": old_mode.value},
        )

    def _h_prop_update(self, msg: Message) -> None:
        rec = self._record_for(msg)
        props = msg.payload.get("properties")
        if not isinstance(props, PropertySet):
            self._reply(msg, M.ERROR, {"error": "properties missing"})
            return
        rec.properties = props
        # Conflict relationships may have moved: invalidate the view's
        # old and new index neighborhoods (scoped in indexed mode).
        self.policy.update_properties(rec.view_id, props)
        self._sync_policy_counters()
        self.invalidate_slice_index(rec.view_id)
        # The slice changed shape under the view: its next serve must
        # be a complete image of the new slice, not a delta of the old.
        rec.synced = False
        self._log({"k": "props", "v": rec.view_id, "props": props})
        self._reply(msg, M.PROP_UPDATE_ACK, {"view_id": rec.view_id})

    def _h_unregister(self, msg: Message) -> None:
        rec = self._record_for(msg)
        image: ObjectImage = msg.payload.get("image") or ObjectImage()
        if not image.is_empty():
            self._commit(rec, image, seq=msg.payload.get("state_seq"))
        view_id = rec.view_id
        # Scoped invalidation needs the static-map row: run it before
        # removing the view from the registry and the map.
        self.policy.unregister_view(view_id)
        self._release(view_id)
        self.counters["unregisters"] += 1
        if self.static_map is not None and self.static_map.has_view(view_id):
            self.static_map.remove_view(view_id)
        self._sync_policy_counters()
        self.invalidate_slice_index(view_id)
        self._forget_in_rounds(view_id)
        self._log({"k": "unregister", "v": view_id})
        self._reply(msg, M.UNREGISTER_ACK, {"view_id": view_id})

    # -- queued (round-based) operations ---------------------------------------
    def _h_acquire(self, msg: Message) -> None:
        rec = self._record_for(msg)
        being_revoked = any(
            rec.view_id in op.awaiting.values()
            for op in self._running.values()
        )
        if (
            rec.exclusive and rec.active and not being_revoked
            and not self._reclaim_fetches  # reclaim first: state unreconciled
        ):
            # Re-ACQUIRE from the current exclusive holder — a delta
            # fallback retry (full=True) or a retransmission.  The token
            # did not move and, by the strong-mode invariant, every
            # conflicting view is already inactive, so a conflict round
            # would be an empty no-op: serve directly from current state
            # instead of queueing a redundant round.  Not taken while an
            # in-flight round is revoking this holder — granting then
            # would race the INVALIDATE and could split ownership; the
            # queue serializes the re-ACQUIRE behind the revocation.
            self.counters["regrants"] += 1
            self._trace("regrant", view=rec.view_id)
            payload = self._serve_payload(
                _PendingOp("acquire", msg, rec.view_id), rec
            )
            self._log_cursors(rec)
            self._reply(msg, M.GRANT, payload)
            self.check_invariants()
            return
        self._enqueue(_PendingOp("acquire", msg, rec.view_id))

    def _h_init(self, msg: Message) -> None:
        rec = self._record_for(msg)
        self._enqueue(
            _PendingOp(
                "init", msg, rec.view_id,
                need_fresh=bool(msg.payload.get("need_fresh", False)),
            )
        )

    def _h_pull(self, msg: Message) -> None:
        rec = self._record_for(msg)
        self._enqueue(
            _PendingOp(
                "pull", msg, rec.view_id,
                need_fresh=bool(msg.payload.get("need_fresh", False)),
            )
        )

    def _enqueue(self, op: _PendingOp) -> None:
        if self.profiler is not None:
            op.enqueued_ns = _clock_ns()
        self._op_queue.append(op)
        self._pump()

    def _pump(self) -> None:
        # Reentrancy guard: _start_op can finalize synchronously (no
        # targets) and _finalize_op pumps, so a scan can trigger another
        # scan mid-flight.  Deferring the nested call to the outer loop
        # keeps the queue scan atomic — a recursive scan would see a
        # half-drained queue and could barge past a blocked op.
        if self._pumping:
            self._pump_again = True
            return
        self._pumping = True
        try:
            while True:
                self._pump_again = False
                self._schedule_ready()
                if not self._pump_again:
                    return
        finally:
            self._pumping = False

    def _schedule_ready(self) -> None:
        if self._reclaim_fetches:
            return  # recovery reclaim in progress: hold every op
        if self.concurrent_rounds == 1:
            # Serial passthrough: the paper's one-op-at-a-time queue,
            # kept as its own branch so the default path never pays a
            # scope computation.
            while not self._running and self._op_queue:
                op = self._op_queue.popleft()
                if op.view_id not in self.views:
                    # The view unregistered while queued; drop it.
                    continue
                self._start_running(op)
            return
        queue = self._op_queue
        if not queue:
            return
        # One FIFO scan with no barging: an op starts iff its scope is
        # disjoint from every running round AND from every conflicting
        # op still waiting ahead of it, so two conflicting ops never
        # reorder (each conflict group sees exactly the serial order)
        # while independent groups overtake a blocked one.
        limit = self.concurrent_rounds
        scan = list(queue)
        queue.clear()
        blocked: List[frozenset] = []
        for op in scan:
            if op.view_id not in self.views:
                continue
            if limit and len(self._running) >= limit:
                queue.append(op)  # table full: keep FIFO order
                continue
            scope = self._op_scope(op)
            if any(
                not scope.isdisjoint(r.scope) for r in self._running.values()
            ) or any(not scope.isdisjoint(b) for b in blocked):
                if not op.waited:
                    op.waited = True
                    self.counters["sched_conflict_waits"] += 1
                blocked.append(scope)
                queue.append(op)
                continue
            op.scope = scope
            self._start_running(op)

    def _op_scope(self, op: _PendingOp) -> frozenset:
        """Independence footprint of one round: the requesting view plus
        its whole conflict set (index candidates, static-SHARED
        partners, exclusive holders — every view the round could target
        or race with)."""
        if self.policy.indexed:
            scope = self.policy.op_scope(op.view_id)
            self.counters["index_candidates"] = self.policy.index_candidates
            return scope
        return self.policy.op_scope(op.view_id, self.views.keys())

    def _start_running(self, op: _PendingOp) -> None:
        self._op_seq += 1
        op.seq = self._op_seq
        self._running[op.seq] = op
        depth = len(self._running)
        if depth > self.counters["concurrent_rounds_hwm"]:
            self.counters["concurrent_rounds_hwm"] = depth
            self.transport.stats.record_concurrent_rounds(depth)
        if depth > 1:
            self.counters["rounds_overlapped"] += 1
        prof = self.profiler
        if prof is not None and op.enqueued_ns:
            prof.record("queue_wait", _clock_ns() - op.enqueued_ns)
        self._start_op(op)

    def _start_op(self, op: _PendingOp) -> None:
        prof = self.profiler
        t0 = _clock_ns() if prof is not None else 0
        conflicts = self.conflict_set_of(op.view_id)
        if prof is not None:
            prof.note_op()
            t1 = _clock_ns()
            prof.record("conflict", t1 - t0)
        else:
            t1 = 0
        # Target selection intersects the conflict set with the
        # maintained activity sets — O(conflict degree), never O(V).
        if op.kind == "acquire":
            # Revoke every conflicting view that is currently active.
            active = self._active_set
            targets = {v: M.INVALIDATE for v in conflicts if v in active}
        else:  # pull / init
            targets = {}
            exclusive = self._exclusive_set
            active = self._active_set
            for v in conflicts:
                if v in exclusive:
                    # A conflicting strong owner must always be revoked
                    # before data is served (one-copy semantics).
                    targets[v] = M.INVALIDATE
                elif op.need_fresh and v in active:
                    # Validity trigger fired: collect fresh state from
                    # the other active views before serving.
                    targets[v] = M.FETCH_REQ
        outgoing: List[Message] = []
        for v, mtype in targets.items():
            out = Message(mtype, self.address, self.views[v].address,
                          {"view_id": v, "requested_by": op.view_id})
            op.awaiting[out.msg_id] = v
            self._round_ops[out.msg_id] = op
            if mtype == M.INVALIDATE:
                self.counters["invalidates_sent"] += 1
            else:
                self.counters["fetches_sent"] += 1
            outgoing.append(out)
        if prof is not None:
            t2 = _clock_ns()
            prof.record("targets", t2 - t1)
        else:
            t2 = 0
        self._send_round(outgoing)
        if prof is not None:
            prof.record("fanout", _clock_ns() - t2)
        if op.awaiting:
            self.counters["rounds"] += 1
        if not op.awaiting:
            self._finalize_op(op)
        elif self.round_timeout is not None:
            self.transport.schedule(
                self.round_timeout, lambda: self._expire_round(op)
            )

    def _send_round(self, outgoing: List[Message]) -> None:
        """Ship one round's fan-out, coalescing same-node messages.

        Without coalescing (or with a single target) messages go out
        individually.  With it, messages are grouped by the topology
        node their destination endpoint is placed on; groups of two or
        more ride one BATCH frame (addressed to the group's first
        destination — any bound address on that node works, the
        transport splits on arrival).  Endpoints the transport cannot
        place on a node (no topology, or the TCP backend, where every
        endpoint is localhost) all fall in one local group.
        """
        if not self.coalesce_rounds or len(outgoing) <= 1:
            for out in outgoing:
                self._send(out)
            return
        groups: "OrderedDict[Any, List[Message]]" = OrderedDict()
        node_of = getattr(self.transport, "node_of", None)
        for out in outgoing:
            node = node_of(out.dst) if node_of is not None else None
            groups.setdefault(node if node is not None else "<local>", []).append(out)
        for subs in groups.values():
            if len(subs) == 1:
                self._send(subs[0])
            else:
                self._send(make_batch(self.address, subs[0].dst, subs))

    def _expire_round(self, op: _PendingOp) -> None:
        """Watchdog: force-finalize a round stuck on silent views.

        The silent views are deactivated so the requester is not
        blocked forever by a dead or wedged cache manager — but their
        context (last committed image, dedup cursors, the operation
        they were blocking) is quarantined first, so a recovering CM
        can reconcile instead of silently losing its dirty state.
        """
        with self._lock:
            if op.seq not in self._running or not op.awaiting:
                return  # the round completed in time
            dropped = list(op.awaiting.values())
            self.counters["round_timeouts"] += 1
            self._trace("round-timeout", dropped=dropped)
            for view_id in dropped:
                rec = self.views.get(view_id)
                if rec is not None:
                    self.counters["rounds_quarantined"] += 1
                    self._quarantine_view(
                        rec,
                        reason="round-timeout",
                        op_context={
                            "op_kind": op.kind,
                            "requested_by": op.view_id,
                        },
                    )
                    rec.active = False
                    rec.exclusive = False
                    self._log_cursors(rec)
            for mid in op.awaiting:
                self._round_ops.pop(mid, None)
            op.awaiting.clear()
            self._finalize_op(op)

    def _h_round_reply(self, msg: Message) -> None:
        if msg.reply_to in self._reclaim_fetches:
            self._h_reclaim_reply(msg)
            return
        op = self._round_ops.pop(msg.reply_to, None)
        if op is None or msg.reply_to not in op.awaiting:
            # Late/duplicate reply from a finished round — harmless.
            self._trace("stale-round-reply", reply_to=msg.reply_to)
            return
        view_id = op.awaiting.pop(msg.reply_to)
        rec = self.views.get(view_id)
        image: ObjectImage = msg.payload.get("image") or ObjectImage()
        if rec is not None:
            self._renew_lease(rec)  # the view answered: it is alive
            faulted = False
            if not image.is_empty():
                try:
                    self._commit(rec, image, seq=msg.payload.get("state_seq"))
                except Exception as exc:  # noqa: BLE001 — fence, see below
                    # A merge/resolver hook blowing up mid-round used to
                    # propagate out of the handler and wedge the op slot
                    # forever (the ACK was consumed but the round never
                    # finalized).  Fence it: record the loss, quarantine
                    # the offending view, and let the round finish.
                    faulted = True
                    self._round_fault(op, rec, exc)
            if not faulted and msg.msg_type == M.INVALIDATE_ACK:
                rec.active = False
                rec.exclusive = False
                self._log_cursors(rec)
        if not op.awaiting:
            self._finalize_op(op)

    def _round_fault(self, op: _PendingOp, rec: ViewRecord, exc: Exception) -> None:
        """Fence a handler fault while absorbing a round reply: the
        view's handed-over state is recorded as lost (quarantined for
        reconciliation) instead of wedging the op's slot."""
        self.counters["round_faults"] += 1
        self._trace("round-fault", view=rec.view_id, error=str(exc))
        try:
            self._quarantine_view(
                rec,
                reason="round-fault",
                op_context={"op_kind": op.kind, "requested_by": op.view_id},
            )
        except Exception:
            # Quarantine runs the same application hooks that just
            # failed; the stash is best-effort during a fault.
            self._trace("round-fault-quarantine-failed", view=rec.view_id)
        rec.active = False
        rec.exclusive = False
        self._log_cursors(rec)

    def _serve_fault(self, op: _PendingOp, rec: ViewRecord, exc: Exception) -> None:
        """Fence a serve-side fault (application extract hook raised):
        record the loss, quarantine the offender, answer ERROR — the
        op's slot has already been released, so unrelated rounds keep
        flowing instead of wedging behind the failure."""
        self.counters["serve_faults"] += 1
        self._trace("serve-fault", view=rec.view_id, error=str(exc))
        try:
            self._quarantine_view(
                rec,
                reason="serve-fault",
                op_context={"op_kind": op.kind, "requested_by": op.view_id},
            )
        except Exception:
            self._trace("serve-fault-quarantine-failed", view=rec.view_id)
        rec.active = False
        rec.exclusive = False
        self._log_cursors(rec)
        self._reply(op.request, M.ERROR, {"error": str(exc)})

    def _finalize_op(self, op: _PendingOp) -> None:
        self._running.pop(op.seq, None)
        rec = self.views.get(op.view_id)
        if rec is not None:
            prof = self.profiler
            t0 = _clock_ns() if prof is not None else 0
            try:
                payload = self._serve_payload(op, rec)
            except Exception as exc:  # noqa: BLE001 — fence, see _serve_fault
                self._serve_fault(op, rec, exc)
                self._pump()
                return
            if prof is not None:
                prof.record("serve", _clock_ns() - t0)
            rec.active = True
            if op.kind == "acquire":
                rec.exclusive = True
                self.counters["grants"] += 1
                reply_type = M.GRANT
            elif op.kind == "init":
                reply_type = M.INIT_DATA
            else:
                reply_type = M.PULL_DATA
            # The serve moved this view's delta cursors (seen,
            # last_served_seq) and its activity flags: persist them so a
            # restarted directory still serves this view deltas instead
            # of forcing a full re-sync.
            self._log_cursors(rec)
            self._reply(op.request, reply_type, payload)
            self.check_invariants()
        self._pump()

    def _serve_payload(self, op: _PendingOp, rec: ViewRecord) -> Dict[str, Any]:
        """Build the image payload for a GRANT/INIT_DATA/PULL_DATA reply.

        A requester that attached a ``since`` cursor matching what the
        directory last served it gets a **delta image**: only the cells
        whose authoritative version exceeds what the view has seen.
        Everything else — first contact, recovery/quarantine re-sync,
        property change, cursor mismatch, an explicit ``full`` request,
        or delta disabled — gets a complete slice image.  Either way the
        reply is one message: the paper's Fig-4 logical message counts
        are unchanged, only payload contents shrink.
        """
        since = op.request.payload.get("since")
        delta_capable = self.delta and since is not None
        serve_delta = (
            delta_capable
            and rec.synced
            and since == rec.last_served_seq
            and not op.request.payload.get("full", False)
        )
        if serve_delta:
            keys = self._slice_keys(rec.view_id)
            slice_size = len(keys)
            changed = [
                k for k in keys
                if self.master_versions.get(k) > rec.seen.get(k)
            ]
            image = self._extract_slice(rec, changed)
            if len(image) != len(changed):
                # Some changed cells did not materialize — a stale slice
                # key index, a cell removed behind our back, or an
                # application extract_cells hook that filters.  Stamping
                # them as seen would silently drop those updates, so
                # rebuild the index and degrade to a full serve.
                self.counters["delta_degraded"] += 1
                self.invalidate_slice_index(rec.view_id)
                serve_delta = False
            else:
                self.counters["delta_serves"] += 1
        if not serve_delta:
            image = self.extract_from_object(self.component, rec.properties)
            slice_size = len(image)
            self.counters["full_serves"] += 1
        # Stamp the served cells with the authoritative versions and
        # record what this view has now seen — only cells actually in
        # the image, so the view is never marked as having seen a
        # version it was not sent.
        for key in image.keys():
            v = self.master_versions.get(key)
            image.versions.set(key, v)
            rec.seen.set(key, v)
        rec.synced = True
        rec.last_served_seq = self.commit_seq
        if not delta_capable:
            # Legacy requester (or delta off): plain image, byte-for-byte
            # the pre-delta wire format.
            return {"image": image}
        return {
            "image": DeltaImage(
                image,
                base_seq=since if serve_delta else -1,
                as_of=self.commit_seq,
                complete=not serve_delta,
                slice_size=slice_size,
            )
        }

    def _extract_slice(self, rec: ViewRecord, keys: List[str]) -> ObjectImage:
        """Materialize just ``keys`` of a view's slice.

        Uses the application's partial ``extract_cells`` hook when one
        was supplied; otherwise falls back to a full extract restricted
        to ``keys`` (correct, but no materialization savings).
        """
        if self.extract_cells is not None:
            self.counters["partial_extracts"] += 1
            return self.extract_cells(self.component, rec.properties, keys)
        return self.extract_from_object(self.component, rec.properties).restrict(keys)

    def _forget_in_rounds(self, view_id: str) -> None:
        """Remove a vanished view from any in-flight round."""
        for op in list(self._running.values()):
            stale = [mid for mid, v in op.awaiting.items() if v == view_id]
            if not stale:
                continue
            for mid in stale:
                del op.awaiting[mid]
                self._round_ops.pop(mid, None)
            if not op.awaiting:
                self._finalize_op(op)

    # ------------------------------------------------------------------
    # Durability: WAL records, snapshots, crash-restart recovery
    # ------------------------------------------------------------------
    # WAL record payloads are dicts keyed by "k" (kind) — "commit",
    # "register", "unregister", "cursors", "props", "evict" — with the
    # lsn ("n") assigned by the DurabilityManager.  Cursor records make
    # the delta-serve state survive a restart: a recovering directory
    # that forgot rec.seen / last_served_seq would have to serve every
    # reconnecting CM a full image.

    def _view_state(self, rec: ViewRecord) -> Dict[str, Any]:
        return {
            "v": rec.view_id, "addr": rec.address,
            "props": rec.properties, "mode": rec.mode.value,
            "trig": dict(rec.triggers), "seen": rec.seen.copy(),
            "sseq": rec.last_state_seq, "served": rec.last_served_seq,
            "synced": rec.synced, "active": rec.active,
            "excl": rec.exclusive,
        }

    def _restore_view(self, vd: Dict[str, Any]) -> ViewRecord:
        rec = ViewRecord(
            view_id=vd["v"],
            address=vd["addr"],
            properties=vd.get("props") or PropertySet(),
            mode=Mode.parse(vd.get("mode", Mode.WEAK)),
            triggers=dict(vd.get("trig") or {}),
            active=bool(vd.get("active", False)),
            exclusive=bool(vd.get("excl", False)),
            seen=vd["seen"].copy() if vd.get("seen") is not None else VersionVector(),
            last_state_seq=int(vd.get("sseq", 0)),
            synced=bool(vd.get("synced", False)),
            last_served_seq=int(vd.get("served", -1)),
        )
        self._adopt(rec)
        return rec

    def _durable_state(self) -> Dict[str, Any]:
        """Snapshot payload: the full primary-copy image plus every
        piece of directory bookkeeping recovery needs (commit cursor,
        master versions, per-view delta-serve cursors, quarantine)."""
        return {
            "cseq": self.commit_seq,
            "versions": self.master_versions.copy(),
            # Convention: the empty property set extracts the complete
            # component (the same convention CM recovery relies on).
            "image": self.extract_from_object(self.component, PropertySet()),
            "views": [self._view_state(r) for r in self.views.values()],
            "quarantined": [
                {
                    "v": q.view_id, "addr": q.address, "props": q.properties,
                    "mode": q.mode.value, "seen": q.seen.copy(),
                    "sseq": q.last_state_seq, "img": q.image,
                    "reason": q.reason, "time": q.time, "op": q.op_context,
                }
                for q in self.quarantined.values()
            ],
        }

    def _log(self, record: Dict[str, Any]) -> bool:
        """Append one WAL record; True when it is already durable."""
        if self.durability is None:
            return False
        return self.durability.append(record)

    def _log_cursors(self, rec: ViewRecord) -> None:
        if self.durability is not None:
            self.durability.append({"k": "cursors", **self._view_state(rec)})

    def _recover_durable_state(self) -> None:
        rs = self.durability.recovered
        if rs.empty:
            # First boot of this lineage: snapshot the initial primary
            # copy.  State that predates the first commit is in no WAL
            # record, so without this a crash would lose it.
            self.durability.snapshot(self._durable_state())
            return
        cells = 0
        snap = rs.snapshot
        if snap is not None:
            self.merge_into_object(self.component, snap["image"], PropertySet())
            cells += len(snap["image"])
            self.master_versions = snap["versions"].copy()
            self.commit_seq = int(snap["cseq"])
            for vd in snap.get("views") or []:
                self._restore_view(vd)
            for qd in snap.get("quarantined") or []:
                self.quarantined[qd["v"]] = QuarantinedView(
                    view_id=qd["v"], address=qd["addr"],
                    properties=qd.get("props") or PropertySet(),
                    mode=Mode.parse(qd.get("mode", Mode.WEAK)),
                    seen=qd["seen"], last_state_seq=int(qd.get("sseq", 0)),
                    image=qd["img"], reason=qd.get("reason", "recovered"),
                    time=float(qd.get("time", 0.0)),
                    op_context=qd.get("op"),
                )
        for record in rs.records:
            cells += self._replay(record)
        self.counters["wal_recoveries"] += 1
        self.counters["cells_replayed"] += cells
        self.transport.stats.record_recovery(cells)
        self._trace(
            "durable-recovery",
            cells=cells, records=len(rs.records),
            snapshot_lsn=rs.snapshot_lsn,
        )
        # Post-replay bookkeeping: recovered views get fresh leases (the
        # downtime must not count against them), membership-derived
        # caches start cold, and the lease sweep re-arms.
        for rec in self.views.values():
            self._renew_lease(rec)
            if self.static_map is not None and not self.static_map.has_view(
                rec.view_id
            ):
                self.static_map.add_view(rec.view_id)
        # Membership-derived caches start cold; in indexed mode the
        # inverted index is rebuilt from the recovered registry in one
        # pass (replay never queried it, so nothing stale survives).
        self.policy.reset_index(
            {vid: r.properties for vid, r in self.views.items()}
        )
        self.invalidate_slice_index()
        self._arm_lease_checker()
        # Surviving strong owners may hold dirty state the WAL never saw
        # (a handoff lost with the dead process); reclaim before serving.
        self._reclaim_needed = [
            vid for vid, rec in sorted(self.views.items()) if rec.exclusive
        ]

    def _start_recovery_reclaim(self) -> None:
        """Fetch the authoritative slice from recovered exclusive owners.

        The WAL cannot contain dirty state a strong owner had not yet
        handed over when the directory died, so the recovered primary
        copy may be behind the owner's view.  Every recovered-exclusive
        view is sent a full-slice FETCH_REQ; queued operations stay
        blocked (:meth:`_pump`) until all replies arrive or the reclaim
        window expires — serving anyone from the unreconciled copy
        could leak a stale read.
        """
        for view_id in self._reclaim_needed:
            rec = self.views[view_id]
            out = Message(
                M.FETCH_REQ, self.address, rec.address,
                {"view_id": view_id, "full": True},
            )
            self._reclaim_fetches[out.msg_id] = view_id
            self.counters["fetches_sent"] += 1
            self.counters["recovery_reclaims"] += 1
            self._trace("recovery-reclaim", view=view_id)
            self._send(out)
        self._reclaim_needed = []
        if self._reclaim_fetches:
            # Without a configured round/lease window, a fixed one keeps
            # a dead owner from wedging the queue forever.
            timeout = self.round_timeout or self.lease_duration or 60.0
            self.transport.schedule(timeout, self._expire_reclaim)

    def _h_reclaim_reply(self, msg: Message) -> None:
        view_id = self._reclaim_fetches.pop(msg.reply_to)
        rec = self.views.get(view_id)
        image: ObjectImage = msg.payload.get("image") or ObjectImage()
        if rec is not None:
            self._renew_lease(rec)
            if not image.is_empty():
                self._commit(rec, image, seq=msg.payload.get("state_seq"))
                self._log_cursors(rec)
        self._trace("recovery-reclaim-done", view=view_id)
        if not self._reclaim_fetches:
            self._pump()

    def _expire_reclaim(self) -> None:
        """Watchdog: stop waiting on owners that died with the crash.

        Mirrors :meth:`_expire_round`: the silent views are quarantined
        (their recovered context kept for reconciliation) and their
        exclusivity reclaimed so the queue can drain.
        """
        with self._lock:
            if not self._reclaim_fetches:
                return
            dropped = sorted(self._reclaim_fetches.values())
            self._reclaim_fetches.clear()
            self.counters["reclaim_timeouts"] += 1
            self._trace("recovery-reclaim-timeout", dropped=dropped)
            for view_id in dropped:
                rec = self.views.get(view_id)
                if rec is not None:
                    self._quarantine_view(rec, reason="reclaim-timeout")
                    rec.active = False
                    rec.exclusive = False
                    self._log_cursors(rec)
            self._pump()

    def _replay(self, record: Dict[str, Any]) -> int:
        """Apply one WAL record to blank post-restart state; returns the
        number of primary-copy cells it re-committed."""
        kind = record.get("k")
        if kind == "commit":
            img: ObjectImage = record["img"]
            rec = self.views.get(record.get("v"))
            props = rec.properties if rec is not None else PropertySet()
            self.merge_into_object(self.component, img, props)
            noadv = set(record.get("noadv") or ())
            for key in img.keys():
                v = img.versions.get(key)
                if v > self.master_versions.get(key):
                    self.master_versions.set(key, v)
                if rec is not None and key not in noadv:
                    rec.seen.set(key, max(rec.seen.get(key), v))
            if rec is not None:
                rec.last_state_seq = max(
                    rec.last_state_seq, int(record.get("sseq", 0))
                )
            self.commit_seq = max(self.commit_seq, int(record.get("cseq", 0)))
            return len(img)
        if kind == "register":
            self._restore_view(record)
            self.quarantined.pop(record["v"], None)
        elif kind == "unregister":
            self._release(record.get("v"))
        elif kind == "cursors":
            rec = self.views.get(record.get("v"))
            if rec is not None:
                rec.seen = record["seen"].copy()
                rec.last_state_seq = int(record.get("sseq", 0))
                rec.last_served_seq = int(record.get("served", -1))
                rec.synced = bool(record.get("synced", False))
                rec.active = bool(record.get("active", False))
                rec.exclusive = bool(record.get("excl", False))
                rec.mode = Mode.parse(record.get("mode", rec.mode.value))
        elif kind == "props":
            rec = self.views.get(record.get("v"))
            if rec is not None:
                rec.properties = record.get("props") or PropertySet()
                rec.synced = False
        elif kind == "evict":
            rec = self._release(record.get("v"))
            if rec is not None:
                self.quarantined[rec.view_id] = QuarantinedView(
                    view_id=rec.view_id, address=rec.address,
                    properties=rec.properties, mode=rec.mode,
                    seen=rec.seen, last_state_seq=rec.last_state_seq,
                    image=self.extract_from_object(
                        self.component, rec.properties
                    ),
                    reason=record.get("reason", "recovered"),
                    time=0.0, op_context=None,
                )
        else:
            self._trace("replay-unknown-record", kind=kind)
        return 0

    # ------------------------------------------------------------------
    # Committing updates
    # ------------------------------------------------------------------
    def _commit(
        self, rec: ViewRecord, image: ObjectImage, seq: Optional[int] = None
    ) -> int:
        """Merge pushed/collected cells into the component, bump versions.

        Returns the number of committed cells.  Every committed cell is
        one "update" in the paper's data-quality metric; the pushing
        view's seen-vector advances with it (it has, by definition, seen
        its own update).
        """
        prof = self.profiler
        if prof is None:
            return self._commit_inner(rec, image, seq)
        t0 = _clock_ns()
        n = self._commit_inner(rec, image, seq)
        prof.record("commit", _clock_ns() - t0)
        return n

    def _commit_inner(
        self, rec: ViewRecord, image: ObjectImage, seq: Optional[int] = None
    ) -> int:
        if self.key_filter is not None:
            owned = [k for k in image.keys() if self.key_filter(k)]
            if len(owned) != len(image):
                image = image.restrict(owned)
        if image.is_empty():
            return 0
        if seq is not None:
            if seq <= rec.last_state_seq:
                # A delayed retransmission carrying a snapshot older
                # than state this view already handed over — committing
                # it would resurrect stale data.  Drop the image.
                self._trace("stale-state-seq", view=rec.view_id, seq=seq)
                return 0
            rec.last_state_seq = seq
        resolved: set = set()
        if self.conflict_resolver is not None:
            # Write-write conflict: the pusher had not seen the latest
            # committed update to a cell it is now writing.  Resolve with
            # the application's function (Coda/Bayou-style, paper §4.1).
            stale = [
                k for k in image.keys()
                if rec.seen.get(k) < self.master_versions.get(k)
            ]
            if stale:
                current = self._extract_slice(rec, stale)
                for k in stale:
                    if k in current:
                        merged = self.conflict_resolver(
                            k, current.get(k), image.cells[k]
                        )
                        try:
                            changed = merged != image.cells[k]
                        except Exception:
                            changed = True  # incomparable: assume changed
                        image.cells[k] = merged
                        if changed:
                            resolved.add(k)
        if self.durability is not None:
            # Write-ahead: the record carries the cells stamped with the
            # versions the bump loop below is about to assign, so replay
            # can restore master_versions without re-running the bumps.
            # Appended *before* the in-memory merge and commit_seq
            # advance — under fsync=always the append has synced when it
            # returns, so no ACK built from post-commit state can leave
            # before the record is durable.
            wal_image = ObjectImage(image.cells)
            for key in wal_image.keys():
                wal_image.versions.set(key, self.master_versions.get(key) + 1)
            wal_t0 = _clock_ns() if self.profiler is not None else 0
            durable = self._log({
                "k": "commit", "v": rec.view_id, "img": wal_image,
                "noadv": sorted(resolved), "sseq": rec.last_state_seq,
                "cseq": self.commit_seq + len(image),
            })
            if self.profiler is not None:
                self.profiler.record("wal", _clock_ns() - wal_t0)
            self.counters[
                "commits_durable" if durable else "commits_volatile"
            ] += len(image)
        else:
            self.counters["commits_volatile"] += len(image)
        self.merge_into_object(self.component, image, rec.properties)
        self.counters["commits"] += len(image)
        for key in image.keys():
            newv = self.master_versions.bump(key)
            if key not in resolved:
                rec.seen.set(key, newv)
            # A resolver-rewritten cell is NOT what the pusher sent: its
            # seen-cursor stays behind the new master version so the next
            # (delta) serve ships the resolved value back; advancing it
            # would filter the key out of every delta and the view would
            # diverge from the primary copy permanently.
            if key not in self._known_keys:
                # A brand-new cell: any registered slice might cover it,
                # so every cached key list is suspect.
                self._known_keys.add(key)
                self.invalidate_slice_index()
            if self.on_commit is not None:
                self.on_commit(key, newv)
        self.commit_seq += len(image)
        if self.durability is not None:
            self.durability.note_commit(len(image), self._durable_state)
        return len(image)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._lease_timer is not None:
            self._lease_timer.cancel()
            self._lease_timer = None
        if self.durability is not None:
            self.durability.close()  # clean shutdown: WAL tail synced
        self.endpoint.close()

    def crash(self, torn_tail: bytes = b"") -> None:
        """Die like a killed process: volatile state is simply abandoned,
        and the WAL loses exactly the bytes the fsync policy had not yet
        synced (optionally leaving ``torn_tail`` garbage from a record
        the kill interrupted).  Restart = construct a fresh
        DirectoryManager over the same DurabilitySpec; its recovery
        replays the lineage."""
        if self._lease_timer is not None:
            self._lease_timer.cancel()
            self._lease_timer = None
        if self.durability is not None:
            self.durability.simulate_crash(torn_tail=torn_tail)
        self.endpoint.close()
