"""Durable directory plane: WAL lineage, snapshots, crash recovery.

:class:`DurabilitySpec` is the user-facing configuration threaded
through :class:`~repro.core.system.FleccSystem`,
:class:`~repro.core.sharding.ShardedFleccSystem` (one lineage per
shard, named by shard id + partitioner fingerprint) and
``build_airline_system``.  :class:`DurabilityManager` owns one
lineage's on-disk state:

- WAL segments ``wal-<first_lsn>.log`` (format: :mod:`repro.core.wal`),
  rotated at every snapshot;
- snapshots ``snap-<lsn>.bin`` — one CRC-framed
  :func:`~repro.net.binary_codec.encode_value` record holding the full
  primary-copy image plus directory bookkeeping — written atomically
  (tmp file, fsync, ``os.replace``), the newest ``keep_snapshots`` of
  them retained as fallbacks;
- recovery on open: load the newest snapshot that validates, replay
  every WAL record with ``lsn`` greater than its cut, truncate a torn
  tail, fail-stop on mid-log corruption.

Record payloads are dicts (with codec-registered values like
``ObjectImage`` inside); this layer assigns each one a monotone ``lsn``
under the key ``"n"`` and leaves the rest to the directory manager.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.wal import (
    SYNC_ALWAYS,
    SYNC_POLICIES,
    WalCorruptionError,
    WalError,
    WalScan,
    WalWriter,
    scan_wal,
)
from repro.net.binary_codec import decode_value, encode_value

SNAP_MAGIC = b"FLSNP01\n"
_LEN = struct.Struct(">I")
_CRC = struct.Struct(">I")

_SEGMENT_RE = re.compile(r"^wal-(\d+)\.log$")
_SNAPSHOT_RE = re.compile(r"^snap-(\d+)\.bin$")


@dataclass(frozen=True)
class DurabilitySpec:
    """Configuration for one directory's durable lineage.

    ``root`` is the directory that holds (or will hold) the lineage
    directory ``<root>/<name>/``.  ``fsync`` picks the WAL policy
    (``always`` | ``batch`` | ``off``); ``snapshot_every`` is the
    number of committed cells between compacted snapshots (0 disables
    snapshotting); ``keep_snapshots`` retains that many snapshot
    generations (and the WAL segments they need) as corruption
    fallbacks.
    """

    root: Union[str, Path]
    fsync: str = "batch"
    batch_interval: int = 16
    snapshot_every: int = 256
    keep_snapshots: int = 2
    name: str = "dm"

    def __post_init__(self) -> None:
        if self.fsync not in SYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {self.fsync!r}; one of {SYNC_POLICIES}"
            )
        if self.keep_snapshots < 1:
            raise WalError(f"keep_snapshots must be >= 1, got {self.keep_snapshots}")

    def for_shard(self, shard_id: int, fingerprint: str) -> "DurabilitySpec":
        """The per-shard lineage of a sharded plane.

        Named by shard id *and* partitioner fingerprint: restarting the
        plane with a different partitioner must not recover a shard
        from a lineage whose key partition was different — that would
        silently re-home cells the new partitioner routes elsewhere.
        """
        return replace(self, name=f"{self.name}-shard{shard_id}-{fingerprint}")

    @property
    def directory(self) -> Path:
        return Path(self.root) / self.name


@dataclass
class RecoveredState:
    """What one lineage held on disk at open time."""

    snapshot: Optional[Dict[str, Any]] = None   # newest snapshot that validates
    snapshot_lsn: int = 0                       # its WAL cut (0: none)
    records: List[Dict[str, Any]] = field(default_factory=list)  # lsn > cut
    snapshots_skipped: int = 0                  # newer snapshots that failed to load
    torn_tail_truncated: bool = False

    @property
    def empty(self) -> bool:
        return self.snapshot is None and not self.records


def _frame_snapshot(payload: bytes) -> bytes:
    return SNAP_MAGIC + _LEN.pack(len(payload)) + payload + _CRC.pack(
        zlib.crc32(payload) & 0xFFFFFFFF
    )


def _load_snapshot(path: Path) -> Dict[str, Any]:
    """Decode one snapshot file; raises WalError on any damage."""
    raw = path.read_bytes()
    header = len(SNAP_MAGIC)
    if len(raw) < header + _LEN.size or raw[:header] != SNAP_MAGIC:
        raise WalError(f"{path}: not a snapshot (bad or truncated magic)")
    (length,) = _LEN.unpack_from(raw, header)
    body_end = header + _LEN.size + length
    if body_end + _CRC.size > len(raw):
        raise WalError(f"{path}: truncated snapshot body")
    payload = raw[header + _LEN.size : body_end]
    (crc,) = _CRC.unpack_from(raw, body_end)
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise WalError(f"{path}: snapshot CRC mismatch")
    value = decode_value(payload)
    if not isinstance(value, dict):
        raise WalError(f"{path}: snapshot payload is not a record")
    return value


def partitioner_fingerprint(partitioner: Any) -> str:
    """A stable fingerprint of a partitioner's key-routing function.

    Hashes the class name plus the routing-relevant configuration; two
    partitioners that route keys identically fingerprint identically
    across process restarts (CRC-32 over a canonical JSON spelling —
    never ``hash()``, which is salted per process).
    """
    fp = getattr(partitioner, "fingerprint", None)
    if callable(fp):
        return fp()
    spec: Dict[str, Any] = {"cls": type(partitioner).__name__}
    for attr in ("n_shards", "replicas", "partition_property"):
        if hasattr(partitioner, attr):
            spec[attr] = getattr(partitioner, attr)
    ranges = getattr(partitioner, "ranges", None)
    if ranges is not None:
        spec["ranges"] = [r.to_jsonable() for r in ranges]
    digest = zlib.crc32(
        json.dumps(spec, sort_keys=True, default=str).encode("utf-8")
    )
    return f"{digest & 0xFFFFFFFF:08x}"


class DurabilityManager:
    """One directory's WAL + snapshot lineage.

    Construction performs recovery: ``recovered`` holds the newest
    valid snapshot and the decoded WAL tail beyond it, a torn tail is
    truncated on disk, and the writer resumes appending at the next
    ``lsn``.  Mid-log corruption raises — the caller must not come up
    on a forked history.
    """

    def __init__(self, spec: DurabilitySpec) -> None:
        self.spec = spec
        self.dir = spec.directory
        self.dir.mkdir(parents=True, exist_ok=True)
        self.counters: Dict[str, int] = {
            "wal_appends": 0, "wal_syncs": 0, "snapshots_written": 0,
            "snapshots_skipped": 0, "records_replayed": 0,
            "segments_pruned": 0,
        }
        self.recovered = self._recover()
        self.counters["records_replayed"] = len(self.recovered.records)
        self.counters["snapshots_skipped"] = self.recovered.snapshots_skipped
        self.next_lsn = 1 + max(
            self.recovered.snapshot_lsn,
            max((r["n"] for r in self.recovered.records), default=0),
        )
        self._snapshot_lsn = self.recovered.snapshot_lsn
        # Commit-order guard: commit records must append in strictly
        # increasing "cseq" order.  With the directory's concurrent
        # round scheduler several rounds commit interleaved, but every
        # commit runs under the directory lock and advances commit_seq
        # before the next can log — this assertion turns any future
        # violation of that linearization into a loud WalError instead
        # of a silently forked replay order.  Seeded from the recovered
        # tail so the invariant spans restarts of one lineage.
        self._last_commit_cseq = max(
            (int(r.get("cseq", 0)) for r in self.recovered.records
             if r.get("k") == "commit"),
            default=0,
        )
        if self.recovered.snapshot is not None:
            self._last_commit_cseq = max(
                self._last_commit_cseq,
                int(self.recovered.snapshot.get("cseq", 0)),
            )
        self._cells_since_snapshot = 0
        self._syncs_base = 0  # syncs of writers already rotated out
        self._writer = self._open_tail_writer()

    # -- recovery --------------------------------------------------------
    def _segments(self) -> List[Tuple[int, Path]]:
        out = []
        for p in self.dir.iterdir():
            m = _SEGMENT_RE.match(p.name)
            if m:
                out.append((int(m.group(1)), p))
        return sorted(out)

    def _snapshots(self) -> List[Tuple[int, Path]]:
        out = []
        for p in self.dir.iterdir():
            m = _SNAPSHOT_RE.match(p.name)
            if m:
                out.append((int(m.group(1)), p))
        return sorted(out)

    def _recover(self) -> RecoveredState:
        state = RecoveredState()
        for lsn, path in reversed(self._snapshots()):
            try:
                state.snapshot = _load_snapshot(path)
                state.snapshot_lsn = lsn
                break
            except WalError:
                # A damaged snapshot (e.g. the process died while one
                # was being written): fall back to the previous
                # generation and pay a longer WAL replay instead.
                state.snapshots_skipped += 1
        segments = self._segments()
        for i, (first_lsn, path) in enumerate(segments):
            last = i == len(segments) - 1
            try:
                scan = scan_wal(path)
            except WalCorruptionError:
                raise
            if scan.torn:
                if not last:
                    # Rotation closes segments cleanly; a short interior
                    # segment means acknowledged records vanished.
                    raise WalCorruptionError(
                        f"{path}: truncated interior WAL segment"
                    )
                with open(path, "r+b") as f:
                    f.truncate(scan.valid_end)
                state.torn_tail_truncated = True
            for payload in scan.records:
                record = decode_value(payload)
                if record.get("n", 0) > state.snapshot_lsn:
                    state.records.append(record)
        state.records.sort(key=lambda r: r.get("n", 0))
        return state

    def _open_tail_writer(self) -> WalWriter:
        segments = self._segments()
        if segments:
            path = segments[-1][1]
        else:
            path = self.dir / f"wal-{self.next_lsn}.log"
        return WalWriter(
            path, sync=self.spec.fsync, batch_interval=self.spec.batch_interval
        )

    # -- appending -------------------------------------------------------
    def append(self, record: Dict[str, Any]) -> bool:
        """Persist one record; returns True when it is already durable.

        Assigns the next ``lsn`` (key ``"n"``) — callers pass the
        payload only.  Under ``fsync=always`` the append has been
        fsynced when this returns, so replying to the client after
        ``append`` is exactly the no-ack-before-durable rule.
        """
        record = dict(record)
        if record.get("k") == "commit" and "cseq" in record:
            cseq = int(record["cseq"])
            if cseq <= self._last_commit_cseq:
                raise WalError(
                    f"commit records out of order: cseq {cseq} after "
                    f"{self._last_commit_cseq} (concurrent rounds must "
                    f"commit in commit_seq order)"
                )
            self._last_commit_cseq = cseq
        record["n"] = self.next_lsn
        self.next_lsn += 1
        self.counters["wal_appends"] += 1
        durable = self._writer.append(encode_value(record))
        self.counters["wal_syncs"] = self._syncs_base + self._writer.syncs
        return durable

    def sync(self) -> None:
        self._writer.sync()
        self.counters["wal_syncs"] = self._syncs_base + self._writer.syncs

    def ensure_ack_durable(self) -> None:
        """Make every appended record durable before an ACK leaves.

        Under ``fsync=always`` this is a no-op (``append`` already
        synced); it exists as the explicit guard that closes any
        ack-before-durable window on the reply path.
        """
        if self.spec.fsync == SYNC_ALWAYS and self._writer.unsynced_records:
            self.sync()

    # -- snapshots -------------------------------------------------------
    def note_commit(self, cells: int, state: Callable[[], Dict[str, Any]]) -> None:
        """Account committed cells; snapshot when the interval elapses.

        ``state`` is a thunk so the full primary-copy image is only
        materialized when a snapshot is actually due.
        """
        if self.spec.snapshot_every <= 0:
            return
        self._cells_since_snapshot += cells
        if self._cells_since_snapshot >= self.spec.snapshot_every:
            self.snapshot(state())

    def snapshot(self, state: Dict[str, Any]) -> int:
        """Write a compacted snapshot at the current WAL position.

        The image covers everything through ``lsn = next_lsn - 1``; the
        WAL rotates to a fresh segment and generations beyond
        ``keep_snapshots`` (with the segments only they needed) are
        pruned.  Returns the snapshot's cut lsn.
        """
        cut = self.next_lsn - 1
        payload = encode_value(dict(state, snapshot_lsn=cut))
        final = self.dir / f"snap-{cut}.bin"
        tmp = self.dir / f"snap-{cut}.bin.tmp"
        with open(tmp, "wb") as f:
            f.write(_frame_snapshot(payload))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, final)
        self.counters["snapshots_written"] += 1
        self._snapshot_lsn = cut
        self._cells_since_snapshot = 0
        # Rotate: close the current segment (making its tail durable)
        # and start the post-snapshot segment.
        self._writer.close()
        self._syncs_base += self._writer.syncs
        self._writer = WalWriter(
            self.dir / f"wal-{self.next_lsn}.log",
            sync=self.spec.fsync,
            batch_interval=self.spec.batch_interval,
        )
        self._prune(cut)
        return cut

    def _prune(self, newest_snapshot_lsn: int) -> None:
        snaps = self._snapshots()
        keep = snaps[-self.spec.keep_snapshots:]
        for lsn, path in snaps[: len(snaps) - len(keep)]:
            path.unlink(missing_ok=True)
        oldest_kept = keep[0][0] if keep else newest_snapshot_lsn
        segments = self._segments()
        # Segment i covers lsns [first_i, first_{i+1}); drop it only when
        # the *next* segment already starts at or before the oldest kept
        # snapshot's cut + 1 (i.e. every record in it predates the cut).
        for (first, path), (nxt, _) in zip(segments, segments[1:]):
            if nxt <= oldest_kept + 1:
                path.unlink(missing_ok=True)
                self.counters["segments_pruned"] += 1

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Clean shutdown: the WAL tail is synced regardless of policy."""
        self._writer.close()
        self.counters["wal_syncs"] = self._syncs_base + self._writer.syncs

    def simulate_crash(self, torn_tail: bytes = b"") -> None:
        """Kill this lineage's process: unsynced WAL bytes are lost and
        ``torn_tail`` garbage may be left behind (a record the kill
        interrupted).  A fresh :class:`DurabilityManager` over the same
        spec performs recovery."""
        self._writer.simulate_crash(torn_tail=torn_tail)
