"""Per-cell version accounting.

The directory manager stamps every committed update to a data cell
(e.g. one flight record) with an increasing version.  A cache manager
remembers the versions it last saw; the difference against the
directory's current vector is the paper's **data quality** metric —
"the number of remote unseen updates to the shared data" (§5.2, Figs 5
and 6).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.net.codec import register_codec_type


class VersionVector:
    """Map of cell key -> monotonically increasing update counter."""

    __slots__ = ("_v",)

    def __init__(self, initial: Mapping[str, int] | None = None) -> None:
        self._v: Dict[str, int] = dict(initial or {})
        for k, n in self._v.items():
            if n < 0:
                raise ValueError(f"negative version for {k!r}: {n}")

    # -- basics -----------------------------------------------------------
    def get(self, key: str) -> int:
        return self._v.get(key, 0)

    def bump(self, key: str, by: int = 1) -> int:
        """Record ``by`` new update(s) to ``key``; returns the new version."""
        if by < 1:
            raise ValueError(f"bump must be >= 1, got {by}")
        self._v[key] = self._v.get(key, 0) + by
        return self._v[key]

    def set(self, key: str, version: int) -> None:
        if version < 0:
            raise ValueError(f"negative version: {version}")
        self._v[key] = version

    def keys(self) -> Iterable[str]:
        return self._v.keys()

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._v.items()))

    def copy(self) -> "VersionVector":
        return VersionVector(self._v)

    def __len__(self) -> int:
        return len(self._v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VersionVector):
            return NotImplemented
        keys = set(self._v) | set(other._v)
        return all(self.get(k) == other.get(k) for k in keys)

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(tuple(sorted(self._v.items())))

    # -- ordering / merging -----------------------------------------------
    def merge_max(self, other: "VersionVector") -> "VersionVector":
        """Pointwise maximum (after absorbing another replica's view)."""
        keys = set(self._v) | set(other._v)
        return VersionVector({k: max(self.get(k), other.get(k)) for k in keys})

    def dominates(self, other: "VersionVector") -> bool:
        """True when this vector has seen everything ``other`` has."""
        return all(self.get(k) >= n for k, n in other._v.items())

    def diff(self, base: "VersionVector") -> "VersionVector":
        """Entries strictly ahead of ``base``, at this vector's versions.

        The delta-synchronization primitive: ``base.merge_max(a.diff(base))
        == base.merge_max(a)``, and ``a.diff(base)`` is empty exactly when
        ``base.dominates(a)``.
        """
        return VersionVector(
            {k: n for k, n in self._v.items() if n > base.get(k)}
        )

    def unseen_updates(self, seen: "VersionVector", keys: Iterable[str] | None = None) -> int:
        """Paper's quality metric: updates in ``self`` not yet in ``seen``.

        Restricted to ``keys`` when given (a view only cares about the
        cells its properties cover).
        """
        ks = self._v.keys() if keys is None else keys
        return sum(max(0, self.get(k) - seen.get(k)) for k in ks)

    # -- wire ---------------------------------------------------------------
    def to_jsonable(self) -> Dict[str, int]:
        return dict(self._v)

    @classmethod
    def from_jsonable(cls, d: Mapping[str, int]) -> "VersionVector":
        return cls(d)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{n}" for k, n in sorted(self._v.items()))
        return f"VersionVector({{{inner}}})"


register_codec_type(
    "flecc.version_vector",
    VersionVector,
    to_jsonable=VersionVector.to_jsonable,
    from_jsonable=VersionVector.from_jsonable,
)
