"""Render a :class:`~repro.core.messages.TraceLog` as a textual
message-sequence chart (actor lanes + labelled arrows), the form the
paper's Figure 2 uses.

Only ``send:*`` events are drawn (one arrow per message); other trace
events can be listed underneath with :func:`render_annotations`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.messages import TraceEvent, TraceLog


def _actors_in_order(trace: TraceLog, explicit: Optional[Sequence[str]]) -> List[str]:
    if explicit:
        return list(explicit)
    seen: Dict[str, None] = {}
    for e in trace.events:
        if e.event.startswith("send:"):
            seen.setdefault(e.actor)
            dst = e.detail.get("dst")
            if dst:
                seen.setdefault(dst)
    return list(seen)


def render_sequence(
    trace: TraceLog,
    actors: Optional[Sequence[str]] = None,
    lane_width: int = 18,
    time_width: int = 10,
) -> str:
    """One line per sent message: lifelines with a labelled arrow.

    ``actors`` fixes lane order (default: order of first appearance).
    """
    lanes = _actors_in_order(trace, actors)
    if not lanes:
        return "(no messages in trace)"
    centers = {a: i * lane_width + lane_width // 2 for i, a in enumerate(lanes)}
    total = lane_width * len(lanes)

    def lifeline_row() -> List[str]:
        row = [" "] * total
        for c in centers.values():
            row[c] = "|"
        return row

    lines: List[str] = []
    # Header: actor names centered over their lanes.
    header = [" "] * total
    for a in lanes:
        start = max(0, centers[a] - len(a) // 2)
        for i, ch in enumerate(a[: lane_width - 1]):
            if start + i < total:
                header[start + i] = ch
    lines.append(" " * time_width + "".join(header).rstrip())

    for e in trace.events:
        if not e.event.startswith("send:"):
            continue
        dst = e.detail.get("dst")
        if dst is None or e.actor not in centers or dst not in centers:
            continue
        label = e.event[len("send:"):]
        row = lifeline_row()
        a, b = centers[e.actor], centers[dst]
        lo, hi = (a, b) if a < b else (b, a)
        for i in range(lo + 1, hi):
            row[i] = "-"
        row[b] = ">" if b > a else "<"
        # Center the label on the arrow shaft.
        shaft = hi - lo - 1
        if shaft > len(label):
            start = lo + 1 + (shaft - len(label)) // 2
            for i, ch in enumerate(label):
                row[start + i] = ch
        prefix = f"t={e.time:<{time_width - 2}g}"
        lines.append(prefix + "".join(row).rstrip())
    return "\n".join(lines)


def render_annotations(trace: TraceLog, events: Sequence[str]) -> str:
    """List non-message trace events of the given kinds, time-ordered."""
    rows = [e for e in trace.events if e.event in set(events)]
    return "\n".join(e.format() for e in rows)
