"""Consistency modes (paper §4).

STRONG: "there is only [one] active view running in the system,
providing essentially one-copy serializability semantics."

WEAK: "allows multiple active views to simultaneously work on the
shared data and specify more relaxed consistency levels."

Views may switch between modes at run time (§4, Fig 5's experiment).
"""

from __future__ import annotations

from enum import Enum


class Mode(str, Enum):
    """Per-view mode of operation."""

    STRONG = "strong"
    WEAK = "weak"

    @classmethod
    def parse(cls, value: "Mode | str") -> "Mode":
        if isinstance(value, Mode):
            return value
        try:
            return cls(value.lower())
        except (AttributeError, ValueError):
            raise ValueError(f"unknown mode {value!r}; use 'strong' or 'weak'") from None
