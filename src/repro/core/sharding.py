"""Sharded directory plane: a partitioned primary copy behind a router.

Flecc's protocol is deliberately centralized — one directory manager
owns the primary copy and runs every conflict round.  That caps the
whole coherence plane at one process.  This module partitions the
primary copy across N independent :class:`DirectoryManager` *shards*
while keeping every cache manager oblivious:

- A **partitioner** assigns each cell key to one shard.
  :class:`HashPartitioner` uses a consistent-hash ring over CRC-32 (so
  the assignment is stable across process restarts — ``hash()`` is
  randomized per process and must never leak into routing), and
  :class:`DomainRangePartitioner` splits by property-domain ranges so
  ``dynConfl`` overlap checks stay shard-local for range-partitioned
  workloads.
- A CM-side :class:`ShardRouter` (a :class:`Transport` wrapper) resolves
  REGISTER / ACQUIRE / PUSH / PULL / INIT to the owning shard and fans
  multi-shard operations out, merging the per-shard replies into the
  single reply the cache manager expects.  Conflict rounds run
  **shard-local first** (each shard revokes/fetches independently) and
  meet at a **merge barrier** in the router only when a view's property
  set genuinely spans shards.
- :class:`ShardedDirectoryPlane` builds the shards (each sees only its
  own key partition via wrapped extract functions plus the directory's
  ``key_filter`` guard) and exposes plane-wide counters and merged
  :class:`~repro.net.stats.MessageStats`.

**N=1 parity guarantee**: with one shard the router binds handlers
straight through and forwards every send verbatim — no message is
created, rewritten, or re-ordered — so a single-shard plane is
byte/message-identical to the unsharded system and all existing
experiments remain valid.
"""

from __future__ import annotations

import bisect
import json
import threading
import zlib
from collections import Counter
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core import messages as M
from repro.core.cache_manager import CacheManager, ExtractFromView, MergeIntoView
from repro.core.directory import (
    DirectoryManager,
    ExtractCells,
    ExtractFromObject,
    MergeIntoObject,
)
from repro.core.domains import DiscreteSet, Domain
from repro.core.durability import DurabilitySpec, partitioner_fingerprint
from repro.core.image import DeltaImage, ObjectImage
from repro.core.messages import TraceLog
from repro.core.modes import Mode
from repro.core.property_set import PropertySet
from repro.core.static_map import StaticSharingMap
from repro.core.triggers import TriggerSet
from repro.errors import ReproError, TransportError
from repro.net.message import Message
from repro.net.stats import MessageStats
from repro.net.transport import (
    Completion,
    Endpoint,
    TimerHandle,
    Transport,
    resolve_transport,
)


def stable_key_hash(key: Any) -> int:
    """Process-restart-stable hash for routing decisions.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), so
    using it would scatter a view's cells differently on every restart
    and desynchronize recovering cache managers from the shard that
    holds their state.  CRC-32 is stable, fast, and spreads short cell
    keys well enough for placement.
    """
    return zlib.crc32(str(key).encode("utf-8")) & 0xFFFFFFFF


class HashPartitioner:
    """Consistent-hash ring over cell keys.

    Each shard owns ``replicas`` virtual points on a CRC-32 ring; a key
    belongs to the shard owning the first ring point at or after the
    key's hash.  Virtual points keep the per-shard load balanced and the
    assignment stable when the shard count changes (only ~1/N of keys
    move), though this plane never resizes a live ring.

    ``shards_for(properties)`` maps a view's property set to the shards
    its slice can touch: a :class:`DiscreteSet` domain on the partition
    property enumerates exactly the owning shards; an interval (or a
    missing partition property) cannot be enumerated, so the view is
    treated as spanning every shard.
    """

    def __init__(
        self,
        n_shards: int,
        replicas: int = 64,
        partition_property: str = "cells",
    ) -> None:
        if n_shards < 1:
            raise ReproError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ReproError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = n_shards
        self.replicas = replicas
        self.partition_property = partition_property
        ring: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for rep in range(replicas):
                ring.append((stable_key_hash(f"shard:{shard}:rep:{rep}"), shard))
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [shard for _, shard in ring]

    def shard_of(self, key: Any) -> int:
        """The shard owning ``key``."""
        if self.n_shards == 1:
            return 0
        idx = bisect.bisect_right(self._points, stable_key_hash(key))
        return self._owners[idx % len(self._owners)]

    def fingerprint(self) -> str:
        """Restart-stable digest of this partitioner's key routing.

        Names per-shard durability lineages: a plane restarted with a
        *different* routing function must not recover a shard from a
        lineage whose key partition disagrees with where the new
        partitioner routes those keys.
        """
        spec = f"hash:{self.n_shards}:{self.replicas}:{self.partition_property}"
        return f"{zlib.crc32(spec.encode('utf-8')) & 0xFFFFFFFF:08x}"

    def shards_for(self, properties: Optional[PropertySet]) -> List[int]:
        """Sorted shards a view with ``properties`` can touch."""
        if self.n_shards == 1:
            return [0]
        prop = (
            properties.get(self.partition_property)
            if properties is not None
            else None
        )
        if prop is None or not isinstance(prop.domain, DiscreteSet):
            # Interval (or absent) domains cannot be enumerated: the
            # view may touch any key, so it spans the whole plane.
            return list(range(self.n_shards))
        return sorted({self.shard_of(v) for v in prop.domain.values})


class DomainRangePartitioner:
    """Partition by explicit property-domain ranges.

    One :class:`~repro.core.domains.Domain` per shard; a key belongs to
    the first range that contains it (CRC-32 fallback for keys outside
    every range).  Because the ranges are domains, ``shards_for`` can
    answer by *domain overlap* — the same operation ``dynConfl`` uses —
    so a workload partitioned along its conflict structure keeps every
    overlap check, and therefore every conflict round, shard-local.
    """

    def __init__(
        self,
        ranges: Sequence[Domain],
        partition_property: str = "cells",
    ) -> None:
        if not ranges:
            raise ReproError("DomainRangePartitioner needs at least one range")
        self.ranges: List[Domain] = list(ranges)
        self.n_shards = len(self.ranges)
        self.partition_property = partition_property

    def shard_of(self, key: Any) -> int:
        for shard, dom in enumerate(self.ranges):
            if dom.contains(key):
                return shard
        return stable_key_hash(key) % self.n_shards

    def shards_for(self, properties: Optional[PropertySet]) -> List[int]:
        prop = (
            properties.get(self.partition_property)
            if properties is not None
            else None
        )
        if prop is None:
            return list(range(self.n_shards))
        dom = prop.domain
        if isinstance(dom, DiscreteSet):
            return sorted({self.shard_of(v) for v in dom.values})
        overlapping = [
            shard for shard, r in enumerate(self.ranges) if r.overlaps(dom)
        ]
        return overlapping or [0]

    def fingerprint(self) -> str:
        """Restart-stable digest of the range routing (see
        :meth:`HashPartitioner.fingerprint`)."""
        spec = json.dumps(
            {
                "ranges": [r.to_jsonable() for r in self.ranges],
                "partition_property": self.partition_property,
            },
            sort_keys=True,
        )
        return f"{zlib.crc32(spec.encode('utf-8')) & 0xFFFFFFFF:08x}"


Partitioner = Union[HashPartitioner, DomainRangePartitioner]


def _absorb(acc: ObjectImage, part: ObjectImage) -> None:
    """Union ``part`` into ``acc``, later/newer versions winning.

    Unlike :meth:`ObjectImage.merge_newer` this keeps version-0 cells
    (cells never committed at their shard carry version 0 in a complete
    serve — dropping them would truncate first-contact images) and lets
    an equal-version later serve overwrite an earlier one.
    """
    for key, value in part.cells.items():
        if key not in acc.cells or part.versions.get(key) >= acc.versions.get(key):
            acc.cells[key] = value
            acc.versions.set(key, part.versions.get(key))


class _ViewRoute:
    """Router-side registration state for one view."""

    __slots__ = (
        "view_id", "cm_addr", "properties", "mode", "register_payload",
        "shards", "shard_since", "serve_seq", "last_served", "inflight",
    )

    def __init__(self, view_id: str, cm_addr: str, properties: PropertySet) -> None:
        self.view_id = view_id
        self.cm_addr = cm_addr
        self.properties = properties
        self.mode = Mode.WEAK
        # The original REGISTER payload, kept for synthesized
        # registrations when a view's footprint later grows a shard.
        self.register_payload: Dict[str, Any] = {}
        self.shards: List[int] = []
        # Per-shard delta cursors: the shard's commit cursor after its
        # last serve to this view.  The CM only ever sees the *merged*
        # cursor below, so shard cursors live here.
        self.shard_since: Dict[int, int] = {}
        # Merged-serve cursor handed to the CM (its ``since`` echoes it).
        self.serve_seq = 0
        self.last_served = -1
        # In-flight ACQUIRE fan-outs, for cross-shard disturbance checks.
        self.inflight: List["_Fanout"] = []


class _Fanout:
    """One CM request fanned out to several shards, awaiting the barrier."""

    __slots__ = (
        "orig", "ep", "route", "kind", "pending", "replies", "errors",
        "acc", "plain", "slice_total", "since", "asked_full",
        "attempts", "disturbed", "held", "extra",
    )

    def __init__(self, orig: Message, ep: Optional[Endpoint], route: _ViewRoute) -> None:
        self.orig = orig
        self.ep = ep
        self.route = route
        self.kind = orig.msg_type
        # copy msg_id -> (shard, copy message); copies are kept so a CM
        # retransmission (same orig msg_id) re-sends the *same* copies
        # and the shards' reply caches stay dedup-correct.
        self.pending: Dict[int, Tuple[int, Message]] = {}
        self.replies: List[Tuple[int, Message]] = []
        self.errors: List[str] = []
        # Data-op accumulator: survives ACQUIRE retries, because each
        # attempt advances the shards' seen-cursors — discarding an
        # attempt's cells would lose them from every later delta.
        self.acc = ObjectImage()
        self.plain = False
        self.slice_total: Dict[int, int] = {}
        self.since: Optional[int] = None
        self.asked_full = False
        self.attempts = 1
        # Set when a shard that already granted inside this barrier
        # revoked us again on behalf of a *higher-priority* contender:
        # the merged grant would be missing that shard's token, so the
        # barrier must re-acquire instead of delivering.
        self.disturbed = False
        # Revocations from already-granted shards on behalf of
        # *lower-priority* contenders, held until the merged grant is
        # delivered (see ShardRouter._incoming for the ordering rule).
        self.held: List[Message] = []
        self.extra: Dict[str, Any] = {}


_DATA_OPS = frozenset({M.ACQUIRE, M.PULL_REQ, M.INIT_REQ})
_DATA_REPLY = {M.ACQUIRE: M.GRANT, M.INIT_REQ: M.INIT_DATA, M.PULL_REQ: M.PULL_DATA}


class ShardRouter(Transport):
    """CM-side request router over a partitioned directory plane.

    Cache managers bind on this transport and address the plane by its
    single logical directory address; the router resolves each request
    to the owning shard(s) on the inner transport, runs the merge
    barrier for multi-shard operations, and splits CM replies that carry
    cells owned by other shards (the foreign partitions travel as
    synthesized PUSHes to their home shards).

    With one shard the router is a pure passthrough: handlers bind
    straight through and ``send`` forwards verbatim, so the wire is
    byte/message-identical to the unsharded system.
    """

    def __init__(
        self,
        inner: Transport,
        directory_address: str,
        shard_addresses: Sequence[str],
        partitioner: Partitioner,
        trace: Optional[TraceLog] = None,
        max_acquire_retries: int = 8,
    ) -> None:
        super().__init__()
        if not shard_addresses:
            raise ReproError("ShardRouter needs at least one shard address")
        self.inner = inner
        # One wire, one ledger: the router performs no sends of its own
        # account — everything it ships rides the inner transport, so
        # the plane-wide wire view *is* the inner transport's stats.
        self.stats = inner.stats
        self.directory_address = directory_address
        self.shard_addresses = list(shard_addresses)
        self._shard_index = {a: i for i, a in enumerate(self.shard_addresses)}
        self.partitioner = partitioner
        self.passthrough = len(self.shard_addresses) == 1
        self.trace = trace
        self.max_acquire_retries = max_acquire_retries
        self._inner_eps: Dict[str, Endpoint] = {}
        self._views: Dict[str, _ViewRoute] = {}
        self._by_addr: Dict[str, _ViewRoute] = {}
        self._orig: Dict[int, _Fanout] = {}
        self._copies: Dict[int, Tuple[_Fanout, int]] = {}
        self._swallow: Set[int] = set()
        # Router-level per-shard accounting: the logical messages
        # exchanged with each shard (copies out, replies in).  Merged
        # into one plane-wide view via MessageStats.merge().
        self.shard_stats: Dict[int, MessageStats] = {
            i: MessageStats() for i in range(len(self.shard_addresses))
        }
        self.counters: Dict[str, int] = {
            "router_fanouts": 0,
            "cross_shard_rounds": 0,
            "shard_local_rounds": 0,
            "acquire_retries": 0,
            "invalidates_held": 0,
            "synthesized_pushes": 0,
            "registrations_extended": 0,
            "late_replies": 0,
        }
        self._lock = threading.RLock()
        self._closed = False

    # -- binding ---------------------------------------------------------
    def _on_bind(self, ep: Endpoint) -> None:
        if self.passthrough:
            handler = ep.handler  # N=1: no interception at all
        else:
            handler = lambda m, _ep=ep: self._incoming(_ep, m)  # noqa: E731
        self._inner_eps[ep.address] = self.inner.bind(ep.address, handler)

    def _on_unbind(self, ep: Endpoint) -> None:
        inner_ep = self._inner_eps.pop(ep.address, None)
        if inner_ep is not None:
            inner_ep.close()
        route = self._by_addr.pop(ep.address, None)
        if route is not None:
            self._views.pop(route.view_id, None)

    # -- sending ---------------------------------------------------------
    def send(self, msg: Message) -> None:
        if self._closed:
            raise TransportError("shard router closed")
        if self.passthrough:
            self.inner.send(msg)
            return
        with self._lock:
            if msg.dst == self.directory_address:
                self._route_request(msg)
                return
            shard = self._shard_index.get(msg.dst)
            if shard is not None and msg.msg_type in M.CM_REPLIES:
                self._split_cm_reply(msg, shard)
                return
        self.inner.send(msg)

    def _send_to_shard(self, shard: int, msg: Message) -> None:
        self.shard_stats[shard].record(msg)
        self.inner.send(msg)

    def _trace(self, event: str, **detail: Any) -> None:
        if self.trace is not None:
            self.trace.record(self.inner.now(), "router", event, **detail)

    # -- request routing -------------------------------------------------
    def _route_request(self, msg: Message) -> None:
        fan = self._orig.get(msg.msg_id)
        if fan is not None:
            # CM retransmission (same msg_id): re-send the unanswered
            # copies with their original ids so shard reply caches and
            # round dedup keep working.
            for shard, copy in list(fan.pending.values()):
                self._send_to_shard(shard, copy)
            return
        mt = msg.msg_type
        if mt == M.REGISTER:
            self._route_register(msg)
        elif mt in _DATA_OPS:
            self._route_data(msg)
        elif mt == M.PUSH:
            self._route_push(msg)
        elif mt == M.UNREGISTER:
            self._route_unregister(msg)
        elif mt == M.PROP_UPDATE:
            self._route_prop_update(msg)
        elif mt in (M.SET_MODE, M.HEARTBEAT):
            self._route_broadcast(msg)
        else:
            self._deliver_error(msg, f"unroutable message type {mt}")

    def _route_of(self, msg: Message) -> Optional[_ViewRoute]:
        route = self._views.get(msg.payload.get("view_id"))
        if route is None:
            self._deliver_error(
                msg,
                f"message {msg.msg_type} from unregistered view "
                f"{msg.payload.get('view_id')!r}",
            )
        return route

    def _begin_fanout(
        self, msg: Message, route: _ViewRoute, targets: List[Tuple[int, Message]]
    ) -> _Fanout:
        fan = _Fanout(msg, self._endpoints.get(msg.src), route)
        self._orig[msg.msg_id] = fan
        self._launch(fan, targets)
        return fan

    def _launch(self, fan: _Fanout, targets: List[Tuple[int, Message]]) -> None:
        for shard, copy in targets:
            fan.pending[copy.msg_id] = (shard, copy)
            self._copies[copy.msg_id] = (fan, shard)
        if len(targets) > 1:
            self.counters["router_fanouts"] += 1
        for shard, copy in targets:
            self._send_to_shard(shard, copy)

    def _route_register(self, msg: Message) -> None:
        p = msg.payload
        view_id = p.get("view_id")
        properties = p.get("properties") or PropertySet()
        shards = self.partitioner.shards_for(properties)
        route = self._views.get(view_id)
        if route is None:
            route = _ViewRoute(view_id, msg.src, properties)
            self._views[view_id] = route
        route.cm_addr = msg.src
        self._by_addr[msg.src] = route
        route.properties = properties
        route.mode = Mode.parse(p.get("mode", Mode.WEAK))
        route.shards = shards
        route.register_payload = dict(p)
        for s in shards:
            route.shard_since.setdefault(s, -1)
        targets = [
            (s, Message(M.REGISTER, msg.src, self.shard_addresses[s], dict(p)))
            for s in shards
        ]
        self._begin_fanout(msg, route, targets)

    def _route_data(self, msg: Message) -> None:
        route = self._route_of(msg)
        if route is None:
            return
        since = msg.payload.get("since")
        # A cursor the router did not hand out — first contact, a reset
        # after crash/property change, or an explicit full request —
        # means the CM's base cannot anchor a merged delta: serve a
        # complete image from every shard.
        asked_full = bool(msg.payload.get("full")) or (
            since is not None and (since < 0 or since != route.last_served)
        )
        fan = _Fanout(msg, self._endpoints.get(msg.src), route)
        fan.since = since
        fan.asked_full = asked_full
        self._orig[msg.msg_id] = fan
        if msg.msg_type == M.ACQUIRE:
            route.inflight.append(fan)
        self._send_data_copies(fan)

    def _send_data_copies(self, fan: _Fanout) -> None:
        route = fan.route
        targets: List[Tuple[int, Message]] = []
        for shard in route.shards:
            p = dict(fan.orig.payload)
            if fan.since is not None:
                p["since"] = route.shard_since.get(shard, -1)
                if fan.asked_full:
                    p["full"] = True
                else:
                    p.pop("full", None)
            targets.append(
                (shard, Message(fan.orig.msg_type, fan.orig.src,
                                self.shard_addresses[shard], p))
            )
        if len(targets) > 1:
            self.counters["cross_shard_rounds"] += 1
        else:
            self.counters["shard_local_rounds"] += 1
        self._launch(fan, targets)

    def _route_push(self, msg: Message) -> None:
        route = self._route_of(msg)
        if route is None:
            return
        image: ObjectImage = msg.payload.get("image") or ObjectImage()
        state_seq = msg.payload.get("state_seq")
        groups = self._group_keys(image)
        targets: List[Tuple[int, Message]] = []
        for shard in sorted(groups):
            if shard not in route.shards:
                self._extend_route(route, shard)
            targets.append(
                (shard, Message(M.PUSH, msg.src, self.shard_addresses[shard],
                                {"view_id": route.view_id,
                                 "image": image.restrict(groups[shard]),
                                 "state_seq": state_seq}))
            )
        if not targets:
            # Empty push: one shard must still ACK (and renew the lease).
            home = route.shards[0]
            targets.append(
                (home, Message(M.PUSH, msg.src, self.shard_addresses[home],
                               {"view_id": route.view_id,
                                "image": ObjectImage(),
                                "state_seq": state_seq}))
            )
        self._begin_fanout(msg, route, targets)

    def _route_unregister(self, msg: Message) -> None:
        route = self._route_of(msg)
        if route is None:
            return
        image: ObjectImage = msg.payload.get("image") or ObjectImage()
        state_seq = msg.payload.get("state_seq")
        groups = self._group_keys(image)
        for shard in sorted(groups):
            if shard not in route.shards:
                self._extend_route(route, shard)
        targets = [
            (shard, Message(M.UNREGISTER, msg.src, self.shard_addresses[shard],
                            {"view_id": route.view_id,
                             "image": image.restrict(groups.get(shard, [])),
                             "state_seq": state_seq}))
            for shard in route.shards
        ]
        self._begin_fanout(msg, route, targets)

    def _route_prop_update(self, msg: Message) -> None:
        route = self._route_of(msg)
        if route is None:
            return
        properties = msg.payload.get("properties")
        if not isinstance(properties, PropertySet):
            self._deliver_error(msg, "properties missing")
            return
        new_shards = set(self.partitioner.shards_for(properties))
        old_shards = set(route.shards)
        targets: List[Tuple[int, Message]] = []
        for shard in sorted(new_shards & old_shards):
            targets.append(
                (shard, Message(M.PROP_UPDATE, msg.src,
                                self.shard_addresses[shard],
                                {"view_id": route.view_id,
                                 "properties": properties}))
            )
        for shard in sorted(new_shards - old_shards):
            # The slice now reaches a shard that has never seen this
            # view: synthesize its registration inside the same barrier
            # (recover=True keeps it idempotent against stale state).
            reg = dict(route.register_payload)
            reg["properties"] = properties
            reg["recover"] = True
            targets.append(
                (shard, Message(M.REGISTER, msg.src,
                                self.shard_addresses[shard], reg))
            )
        for shard in sorted(old_shards - new_shards):
            targets.append(
                (shard, Message(M.UNREGISTER, msg.src,
                                self.shard_addresses[shard],
                                {"view_id": route.view_id,
                                 "image": ObjectImage()}))
            )
        fan = self._begin_fanout(msg, route, targets)
        fan.extra["new_shards"] = sorted(new_shards)
        fan.extra["new_properties"] = properties

    def _route_broadcast(self, msg: Message) -> None:
        route = self._route_of(msg)
        if route is None:
            return
        targets = [
            (shard, Message(msg.msg_type, msg.src,
                            self.shard_addresses[shard], dict(msg.payload)))
            for shard in route.shards
        ]
        self._begin_fanout(msg, route, targets)

    # -- CM replies carrying state (INVALIDATE_ACK / FETCH_REPLY) --------
    def _split_cm_reply(self, msg: Message, shard: int) -> None:
        """Keep the asking shard's partition in the reply; ship the rest.

        A revoked spanning view hands *all* its dirty cells to whichever
        shard asked first.  Cells the asking shard does not own would be
        dropped by its ``key_filter``, so they are re-homed here as
        synthesized PUSHes — sent before the reply, and FIFO per link,
        so a shard always commits its partition before any later round
        reply from this CM reaches it.
        """
        route = self._by_addr.get(msg.src)
        image = msg.payload.get("image")
        if route is not None and image is not None and not image.is_empty():
            groups = self._group_keys(image)
            own_keys = groups.pop(shard, [])
            for other in sorted(groups):
                if other not in route.shards:
                    self._extend_route(route, other)
                push = Message(
                    M.PUSH, msg.src, self.shard_addresses[other],
                    # No state_seq: the per-shard cursors gate the CM's
                    # own pushes; a re-homed partition must always land.
                    {"view_id": route.view_id,
                     "image": image.restrict(groups[other])},
                )
                self._swallow.add(push.msg_id)
                self.counters["synthesized_pushes"] += 1
                self._send_to_shard(other, push)
            if len(own_keys) != len(image):
                msg.payload["image"] = image.restrict(own_keys)
        self._send_to_shard(shard, msg)

    def _group_keys(self, image: ObjectImage) -> Dict[int, List[str]]:
        groups: Dict[int, List[str]] = {}
        for key in image.keys():
            groups.setdefault(self.partitioner.shard_of(key), []).append(key)
        return groups

    def _extend_route(self, route: _ViewRoute, shard: int) -> None:
        """Synthesize a registration on a shard the view has outgrown to.

        FIFO per link guarantees the REGISTER lands before anything this
        method's callers send to the same shard right after.
        """
        reg = dict(route.register_payload) or {"view_id": route.view_id}
        reg.setdefault("view_id", route.view_id)
        reg["properties"] = route.properties
        reg["recover"] = True
        m = Message(M.REGISTER, route.cm_addr, self.shard_addresses[shard], reg)
        self._swallow.add(m.msg_id)
        self.counters["registrations_extended"] += 1
        route.shards = sorted(set(route.shards) | {shard})
        route.shard_since.setdefault(shard, -1)
        self._send_to_shard(shard, m)

    # -- incoming (wrapped CM endpoints) ---------------------------------
    def _incoming(self, ep: Endpoint, msg: Message) -> None:
        with self._lock:
            if msg.reply_to is not None:
                entry = self._copies.pop(msg.reply_to, None)
                if entry is not None:
                    fan, shard = entry
                    self.shard_stats[shard].record(msg)
                    self._on_copy_reply(fan, shard, msg)
                    return
                if msg.reply_to in self._swallow:
                    self._swallow.discard(msg.reply_to)
                    return
                if msg.src in self._shard_index:
                    # Reply to an abandoned copy (e.g. a duplicate after
                    # the barrier already closed) — consume it quietly.
                    self.counters["late_replies"] += 1
                    return
            elif msg.msg_type == M.INVALIDATE:
                if self._intercept_invalidate(msg):
                    return
        ep.handler(msg)

    def _intercept_invalidate(self, msg: Message) -> bool:
        """Ordering rule for revocations racing an open acquire barrier.

        A CM that is mid-acquire answers INVALIDATE with an *empty* ACK
        (it is not in its critical section yet), silently surrendering
        any shard token the open barrier already collected — the merged
        grant the router is about to deliver would then claim ownership
        a shard has already given away (a lost-update hole), and two
        contending spanning views can revoke each other's half-collected
        barriers forever (livelock).

        Resolution, per revocation from a shard that already granted
        inside the open barrier:

        - requester has **lower priority** (greater view id): hold the
          INVALIDATE until the merged grant is delivered, then release
          it — the CM is then in (or past) its critical section, so the
          ACK carries the critical section's writes.  Holding blocks
          only that shard's next round, which nothing in this barrier
          waits on; cycles would need priority to strictly decrease
          around a loop, so none form.
        - requester has **higher priority** (smaller view id): let it
          through (the CM yields the token) and mark the barrier
          disturbed — it re-acquires after closing instead of
          delivering a grant with a stolen token.

        A revocation from a shard that has *not* yet granted in this
        barrier costs nothing (no token to lose — the shard's grant
        will come from a later round) and passes straight through.

        Returns True when the message was consumed (held).
        """
        route = self._by_addr.get(msg.dst)
        shard = self._shard_index.get(msg.src)
        if route is None or shard is None:
            return False
        for fan in route.inflight:
            if not any(s == shard for s, _ in fan.replies):
                continue
            requester = msg.payload.get("requested_by")
            if requester is not None and str(requester) > str(route.view_id):
                fan.held.append(msg)
                self.counters["invalidates_held"] += 1
                return True
            fan.disturbed = True
        return False

    def _release_held(self, fan: _Fanout) -> None:
        """Deliver held revocations to the CM (after grant or on abort)."""
        held, fan.held = fan.held, []
        if not held:
            return
        ep = fan.ep if fan.ep is not None else self._endpoints.get(fan.orig.src)
        if ep is None or ep.closed:
            for m in held:
                self.stats.record_drop(m)
            return
        for m in held:
            ep.handler(m)

    def _on_copy_reply(self, fan: _Fanout, shard: int, msg: Message) -> None:
        fan.pending.pop(msg.reply_to, None)
        if msg.msg_type == M.ERROR:
            fan.errors.append(msg.payload.get("error", "shard error"))
        else:
            fan.replies.append((shard, msg))
        if not fan.pending:
            self._finalize(fan)

    # -- barrier merges --------------------------------------------------
    def _finalize(self, fan: _Fanout) -> None:
        if fan.kind in _DATA_OPS:
            self._finalize_data(fan)
            return
        self._orig.pop(fan.orig.msg_id, None)
        if fan.errors:
            self._deliver(fan, M.ERROR, {"error": "; ".join(fan.errors)})
            return
        route = fan.route
        vid = route.view_id
        replies = [m for _, m in fan.replies]
        if fan.kind == M.REGISTER:
            lease = next(
                (m.payload.get("lease") for m in replies
                 if m.payload.get("lease") is not None), None,
            )
            self._deliver(fan, M.REGISTER_ACK, {
                "view_id": vid,
                "recovered": any(m.payload.get("recovered") for m in replies),
                "last_state_seq": max(
                    (m.payload.get("last_state_seq") or 0 for m in replies),
                    default=0,
                ),
                "lease": lease,
                "slice_size": sum(
                    m.payload.get("slice_size") or 0 for m in replies
                ),
            })
        elif fan.kind == M.PUSH:
            self._deliver(fan, M.PUSH_ACK, {
                "committed": sum(
                    m.payload.get("committed", 0) for m in replies
                ),
            })
        elif fan.kind == M.UNREGISTER:
            self._views.pop(vid, None)
            self._by_addr.pop(route.cm_addr, None)
            self._deliver(fan, M.UNREGISTER_ACK, {"view_id": vid})
        elif fan.kind == M.PROP_UPDATE:
            route.properties = fan.extra["new_properties"]
            route.shards = fan.extra["new_shards"]
            kept = set(route.shards)
            route.shard_since = {
                s: route.shard_since.get(s, -1) for s in kept
            }
            # The slice changed shape: the CM resets its cursor to -1,
            # and the next serve must be complete.
            route.last_served = -1
            self._deliver(fan, M.PROP_UPDATE_ACK, {"view_id": vid})
        elif fan.kind == M.SET_MODE:
            payload = replies[0].payload if replies else {}
            route.mode = Mode.parse(payload.get("mode", route.mode))
            self._deliver(fan, M.SET_MODE_ACK, dict(payload))
        elif fan.kind == M.HEARTBEAT:
            lease = next(
                (m.payload.get("lease") for m in replies
                 if m.payload.get("lease") is not None), None,
            )
            self._deliver(fan, M.HEARTBEAT_ACK, {"view_id": vid, "lease": lease})
        else:  # pragma: no cover - routing covers every request type
            self._deliver(fan, M.ERROR, {"error": f"unmergeable {fan.kind}"})

    def _finalize_data(self, fan: _Fanout) -> None:
        route = fan.route
        for shard, msg in fan.replies:
            image = msg.payload.get("image")
            if isinstance(image, DeltaImage):
                route.shard_since[shard] = image.as_of
                fan.slice_total[shard] = image.slice_size
                part = image.image
            else:
                fan.plain = True
                part = image if image is not None else ObjectImage()
                fan.slice_total[shard] = len(part)
            _absorb(fan.acc, part)
        fan.replies = []
        if fan.kind == M.ACQUIRE and fan.disturbed and not fan.errors:
            if fan.attempts < self.max_acquire_retries:
                # A higher-priority contender stole a shard token while
                # the barrier was open: the merged grant would split
                # ownership.  Release anything held (those shards' next
                # rounds must run before our fresh copies reach them),
                # then re-acquire — shards still holding our token
                # answer from the regrant fast path.
                fan.attempts += 1
                fan.disturbed = False
                self.counters["acquire_retries"] += 1
                self._trace("acquire-retry", view=route.view_id,
                            attempt=fan.attempts)
                self._release_held(fan)
                self._send_data_copies(fan)
                return
            fan.errors.append(
                f"acquire for {route.view_id} disturbed after "
                f"{fan.attempts} attempts"
            )
        self._orig.pop(fan.orig.msg_id, None)
        if fan in route.inflight:
            route.inflight.remove(fan)
        if fan.errors:
            self._deliver(fan, M.ERROR, {"error": "; ".join(fan.errors)})
            self._release_held(fan)
            return
        if fan.plain or fan.since is None:
            payload: Dict[str, Any] = {"image": fan.acc}
        else:
            route.serve_seq += 1
            payload = {"image": DeltaImage(
                fan.acc,
                base_seq=-1 if fan.asked_full else fan.since,
                as_of=route.serve_seq,
                complete=fan.asked_full,
                slice_size=sum(fan.slice_total.values()),
            )}
            route.last_served = route.serve_seq
        self._deliver(fan, _DATA_REPLY[fan.kind], payload)
        if fan.held:
            # Release held revocations once the grant has taken effect.
            # Triggered completions run ahead of same-time timers, so a
            # zero-delay timer fires after the CM has processed the
            # grant (entered — possibly already left — its critical
            # section); its ACK then carries the section's writes.
            self.inner.schedule(0.0, lambda: self._release_held(fan))

    # -- delivery back to the CM ----------------------------------------
    def _deliver(self, fan: _Fanout, msg_type: str, payload: Dict[str, Any]) -> None:
        reply = fan.orig.reply(msg_type, payload)
        ep = fan.ep if fan.ep is not None else self._endpoints.get(fan.orig.src)
        if ep is None or ep.closed:
            self.stats.record_drop(reply)
            return
        # Handed to the endpoint directly: the per-shard replies already
        # paid their wire latency and accounting; the merge itself is
        # local to the router.
        ep.handler(reply)

    def _deliver_error(self, msg: Message, error: str) -> None:
        ep = self._endpoints.get(msg.src)
        if ep is None or ep.closed:
            return
        ep.handler(msg.reply(M.ERROR, {"error": error}))

    # -- plane-wide views ------------------------------------------------
    def merged_shard_stats(self) -> MessageStats:
        """All per-shard routing stats merged into one plane-wide view."""
        total = MessageStats()
        for st in self.shard_stats.values():
            total.merge(st)
        return total

    # -- delegated backend services --------------------------------------
    def node_of(self, address: str) -> Optional[str]:
        fn = getattr(self.inner, "node_of", None)
        return fn(address) if fn is not None else None

    def place(self, address: str, node: str) -> None:
        fn = getattr(self.inner, "place", None)
        if fn is None:
            raise TransportError(f"{type(self.inner).__name__} has no placement")
        fn(address, node)

    def set_codec(self, codec: Any) -> None:
        fn = getattr(self.inner, "set_codec", None)
        if fn is None:
            raise TransportError(
                f"{type(self.inner).__name__} has no codec selection"
            )
        fn(codec)

    def now(self) -> float:
        return self.inner.now()

    def schedule(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        return self.inner.schedule(delay, fn)

    def completion(self, name: str = "") -> Completion:
        return self.inner.completion(name)

    def close(self) -> None:
        self._closed = True
        super().close()  # closes router endpoints -> unbinds inner ones
        # The inner transport is shared with the shards; its owner
        # (the plane / the caller) closes it.


class ShardedDirectoryPlane:
    """N directory shards + the router, presented as one directory.

    Each shard is a full :class:`DirectoryManager` whose extract hooks
    are wrapped to see only the shard's key partition, with the
    directory's ``key_filter`` as a second line of defense against
    foreign-key commits (a foreign commit would bump versions the owning
    shard never sees and silently fork the version history).

    With ``n_shards=1`` the plane degenerates to exactly the unsharded
    construction — raw extract functions, no key filter, the original
    directory address — and the router passes everything through, so
    the wire is byte/message-identical to a plain DirectoryManager.
    """

    def __init__(
        self,
        transport: Transport,
        component: Any,
        extract_from_object: ExtractFromObject,
        merge_into_object: MergeIntoObject,
        n_shards: int = 1,
        partitioner: Optional[Partitioner] = None,
        directory_address: str = "dir",
        directory_cls: type = DirectoryManager,
        trace: Optional[TraceLog] = None,
        **dm_kwargs: Any,
    ) -> None:
        if partitioner is None:
            partitioner = HashPartitioner(n_shards)
        self.partitioner = partitioner
        self.n_shards = partitioner.n_shards
        self.address = directory_address
        self.inner = transport
        self.trace = trace
        if self.n_shards == 1:
            self.addresses = [directory_address]
        else:
            self.addresses = [
                f"{directory_address}#{i}" for i in range(self.n_shards)
            ]
        self.router = ShardRouter(
            transport, directory_address, self.addresses, partitioner,
            trace=trace,
        )
        # Durable plane: one WAL/snapshot lineage per shard, named by
        # shard id + partitioner fingerprint — recovering through a
        # *different* partitioner would re-home cells the new routing
        # sends elsewhere, so the lineage name pins the partition.
        durability = dm_kwargs.pop("durability", None)
        if durability is not None and not isinstance(durability, DurabilitySpec):
            raise ReproError(
                "a sharded plane needs a DurabilitySpec (it derives one "
                f"lineage per shard), got {type(durability).__name__}"
            )
        fingerprint = (
            partitioner_fingerprint(partitioner) if durability is not None else ""
        )
        self.shards: List[DirectoryManager] = []
        self._shard_factories: List[Callable[[], DirectoryManager]] = []
        for i, addr in enumerate(self.addresses):
            kwargs = dict(dm_kwargs)
            if self.n_shards == 1:
                extract = extract_from_object
            else:
                extract = self._partition_extract(extract_from_object, i)
                if kwargs.get("extract_cells") is not None:
                    kwargs["extract_cells"] = self._partition_extract_cells(
                        kwargs["extract_cells"], i
                    )
                kwargs["key_filter"] = self._owns(i)
            if durability is not None:
                kwargs["durability"] = durability.for_shard(i, fingerprint)

            def factory(
                _addr: str = addr,
                _extract: ExtractFromObject = extract,
                _kwargs: Dict[str, Any] = kwargs,
            ) -> DirectoryManager:
                return directory_cls(
                    transport=transport,
                    address=_addr,
                    component=component,
                    extract_from_object=_extract,
                    merge_into_object=merge_into_object,
                    trace=trace,
                    **_kwargs,
                )

            self._shard_factories.append(factory)
            self.shards.append(factory())

    def _owns(self, shard: int) -> Callable[[str], bool]:
        part = self.partitioner

        def owns(key: str, _shard: int = shard) -> bool:
            return part.shard_of(key) == _shard

        return owns

    def _partition_extract(
        self, fn: ExtractFromObject, shard: int
    ) -> ExtractFromObject:
        owns = self._owns(shard)

        def extract(component: Any, props: PropertySet) -> ObjectImage:
            image = fn(component, props)
            return image.restrict([k for k in image.keys() if owns(k)])

        return extract

    def _partition_extract_cells(
        self, fn: ExtractCells, shard: int
    ) -> ExtractCells:
        owns = self._owns(shard)

        def extract_cells(
            component: Any, props: PropertySet, keys: List[str]
        ) -> ObjectImage:
            return fn(component, props, [k for k in keys if owns(k)])

        return extract_cells

    # -- plane-wide introspection ----------------------------------------
    @property
    def counters(self) -> Dict[str, int]:
        """Shard counters summed, plus the router's own counters."""
        total: Counter = Counter()
        for dm in self.shards:
            total.update(dm.counters)
        total.update(self.router.counters)
        return dict(total)

    def merged_stats(self) -> MessageStats:
        """Per-shard routing stats merged into one plane-wide view."""
        return self.router.merged_shard_stats()

    def merged_profile(self):
        """Per-shard op-path profiles folded into one plane-wide
        :class:`~repro.core.profiling.DirectoryProfiler` (``None`` when
        the shards were not built with ``profile=True``)."""
        from repro.core.profiling import DirectoryProfiler

        merged: Optional[DirectoryProfiler] = None
        for dm in self.shards:
            prof = getattr(dm, "profiler", None)
            if prof is None:
                continue
            if merged is None:
                merged = DirectoryProfiler()
            merged.merge(prof)
        return merged

    def registered_views(self) -> List[str]:
        out: Set[str] = set()
        for dm in self.shards:
            out.update(dm.registered_views())
        return sorted(out)

    def check_invariants(self) -> None:
        for dm in self.shards:
            dm.check_invariants()

    # -- crash / restart (durable planes) --------------------------------
    def crash_shard(self, shard: int = 0, torn_tail: bytes = b"") -> None:
        """Kill one shard like a dead process (see DirectoryManager.crash):
        its volatile state is abandoned and its WAL loses exactly what
        the fsync policy had not synced."""
        self.shards[shard].crash(torn_tail=torn_tail)

    def restart_shard(self, shard: int = 0) -> DirectoryManager:
        """Bring a crashed shard back: a fresh DirectoryManager over the
        same construction spec recovers the shard's durable lineage and
        re-binds the shard address."""
        self.shards[shard] = self._shard_factories[shard]()
        return self.shards[shard]

    def close(self) -> None:
        for dm in self.shards:
            dm.close()
        self.router.close()


class ShardedFleccSystem:
    """Drop-in :class:`~repro.core.system.FleccSystem` over a sharded plane.

    Same constructor surface plus ``n_shards`` / ``partitioner``; views
    attach exactly as on the unsharded builder (the cache managers bind
    on the router and never learn the plane is partitioned).
    """

    def __init__(
        self,
        transport: Transport,
        component: Any,
        extract_from_object: ExtractFromObject,
        merge_into_object: MergeIntoObject,
        n_shards: int = 1,
        partitioner: Optional[Partitioner] = None,
        directory_address: str = "dir",
        static_map: Optional[StaticSharingMap] = None,
        conflict_resolver: Optional[Callable[[str, Any, Any], Any]] = None,
        trace: Optional[TraceLog] = None,
        directory_cls: type = DirectoryManager,
        coalesce_rounds: bool = False,
        round_timeout: Optional[float] = None,
        lease_duration: Optional[float] = None,
        delta: Optional[bool] = None,
        extract_cells: Optional[ExtractCells] = None,
        codec: Any = None,
        durability: Optional[DurabilitySpec] = None,
        conflict_index: Optional[bool] = None,
        profile: bool = False,
        concurrent_rounds: Optional[int] = None,
    ) -> None:
        # Instance or resolve_transport spec ("sim" | "tcp" | "aio"),
        # same seam as the unsharded builder.
        transport = resolve_transport(transport)
        if codec is not None:
            set_codec = getattr(transport, "set_codec", None)
            if set_codec is None:
                raise ReproError(
                    f"{type(transport).__name__} does not support codec "
                    f"selection (no set_codec method)"
                )
            set_codec(codec)
        self.trace = trace
        self.delta = delta
        dm_kwargs: Dict[str, Any] = {}
        if round_timeout is not None:
            dm_kwargs["round_timeout"] = round_timeout
        if lease_duration is not None:
            dm_kwargs["lease_duration"] = lease_duration
        if delta is not None:
            dm_kwargs["delta"] = delta
        if extract_cells is not None:
            dm_kwargs["extract_cells"] = extract_cells
        if durability is not None:
            dm_kwargs["durability"] = durability
        if conflict_index is not None:
            # Per-shard conflict indexes: each shard maintains its own
            # inverted index over the views registered with it.
            dm_kwargs["conflict_index"] = conflict_index
        if profile:
            # Per-shard profilers; fold with plane.merged_profile().
            dm_kwargs["profile"] = True
        if concurrent_rounds is not None:
            # Each shard runs its own conflict-aware round scheduler:
            # with N > 1 (or 0 = unbounded) a shard overlaps rounds for
            # independent conflict groups of *its* partition.  The
            # router's INVALIDATE hold/disturb protocol is per-view, so
            # a held revocation now blocks only its own conflict
            # group's round, not the shard's whole queue.
            dm_kwargs["concurrent_rounds"] = concurrent_rounds
        self.plane = ShardedDirectoryPlane(
            transport,
            component,
            extract_from_object,
            merge_into_object,
            n_shards=n_shards,
            partitioner=partitioner,
            directory_address=directory_address,
            directory_cls=directory_cls,
            trace=trace,
            static_map=static_map,
            conflict_resolver=conflict_resolver,
            coalesce_rounds=coalesce_rounds,
            **dm_kwargs,
        )
        # Views bind on the router; ``.directory`` is the plane (it has
        # ``.address``/``.counters``/``.check_invariants`` like a DM).
        self.transport: Transport = self.plane.router
        self.directory = self.plane
        self.cache_managers: Dict[str, CacheManager] = {}

    def add_view(
        self,
        view_id: str,
        view: Any,
        properties: PropertySet,
        extract_from_view: ExtractFromView,
        merge_into_view: MergeIntoView,
        mode: Union[Mode, str] = Mode.WEAK,
        triggers: Optional[TriggerSet] = None,
        trigger_poll_period: float = 100.0,
        request_timeout: Optional[float] = None,
        max_retries: int = 3,
        heartbeat_period: Optional[float] = None,
    ) -> CacheManager:
        """Create (but do not yet start) the cache manager for a view."""
        if view_id in self.cache_managers:
            raise ReproError(f"view id already in system: {view_id}")
        cm_kwargs: Dict[str, Any] = {}
        if self.delta is not None:
            cm_kwargs["delta"] = self.delta
        cm = CacheManager(
            transport=self.plane.router,
            directory_address=self.plane.address,
            view_id=view_id,
            view=view,
            properties=properties,
            extract_from_view=extract_from_view,
            merge_into_view=merge_into_view,
            mode=mode,
            triggers=triggers,
            trigger_poll_period=trigger_poll_period,
            trace=self.trace,
            request_timeout=request_timeout,
            max_retries=max_retries,
            heartbeat_period=heartbeat_period,
            **cm_kwargs,
        )
        self.cache_managers[view_id] = cm
        return cm

    def close(self) -> None:
        for cm in self.cache_managers.values():
            if not cm._closed:
                cm._shutdown()
        self.plane.close()
