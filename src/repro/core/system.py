"""System wiring: build a directory + cache managers on one transport.

Also provides :func:`run_view_script`, the cross-backend driver that
lets the *same* application code (a generator yielding completions)
run on the simulated transport (as a kernel process) and on the TCP
transport (as a blocking thread) — the trick that keeps the airline
case study single-sourced across both backends.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple, Union

from repro.core.cache_manager import CacheManager, ExtractFromView, MergeIntoView
from repro.core.directory import (
    DirectoryManager,
    ExtractCells,
    ExtractFromObject,
    MergeIntoObject,
)
from repro.core.messages import TraceLog
from repro.core.modes import Mode
from repro.core.property_set import PropertySet
from repro.core.static_map import StaticSharingMap
from repro.core.triggers import TriggerSet
from repro.errors import ReproError
from repro.net.sim_transport import SimTransport
from repro.net.transport import Completion, Transport, resolve_transport


class FleccSystem:
    """Convenience builder for one original component and its views."""

    def __init__(
        self,
        transport: Transport,
        component: Any,
        extract_from_object: ExtractFromObject,
        merge_into_object: MergeIntoObject,
        directory_address: str = "dir",
        static_map: Optional[StaticSharingMap] = None,
        conflict_resolver: Optional[Callable[[str, Any, Any], Any]] = None,
        trace: Optional[TraceLog] = None,
        directory_cls: type = DirectoryManager,
        coalesce_rounds: bool = False,
        round_timeout: Optional[float] = None,
        lease_duration: Optional[float] = None,
        delta: Optional[bool] = None,
        extract_cells: Optional[ExtractCells] = None,
        codec: Any = None,
        durability: Any = None,
        conflict_index: Optional[bool] = None,
        profile: bool = False,
        concurrent_rounds: Optional[int] = None,
    ) -> None:
        # `transport` may be an instance or a resolve_transport spec
        # string ("sim" | "tcp" | "aio"): the three backends are
        # interchangeable behind this one seam.
        self.transport = transport = resolve_transport(transport)
        self.trace = trace
        # Wire-codec selection ("json" | "binary" | "binary+zlib" |
        # instance): forwarded to the transport, which owns negotiation.
        # None keeps the transport's current codec.
        if codec is not None:
            set_codec = getattr(transport, "set_codec", None)
            if set_codec is None:
                raise ReproError(
                    f"{type(transport).__name__} does not support codec "
                    f"selection (no set_codec method)"
                )
            set_codec(codec)
        # Delta synchronization A/B switch: None keeps the directory's
        # and cache managers' own defaults (delta on); True/False forces
        # it for the whole system — the experiments' baseline toggle.
        self.delta = delta
        directory_kwargs: Dict[str, Any] = {}
        # Passed only when set: baseline directory classes predate the
        # fault-tolerance options and need not accept them.
        if round_timeout is not None:
            directory_kwargs["round_timeout"] = round_timeout
        if lease_duration is not None:
            directory_kwargs["lease_duration"] = lease_duration
        if delta is not None:
            directory_kwargs["delta"] = delta
        if extract_cells is not None:
            directory_kwargs["extract_cells"] = extract_cells
        if durability is not None:
            # A DurabilitySpec (or pre-built DurabilityManager): the
            # directory recovers its lineage before binding.
            directory_kwargs["durability"] = durability
        if conflict_index is not None:
            # Conflict-index A/B switch: None keeps the directory's own
            # default (indexed on); False forces the pre-index
            # brute-force paths — the dm_profile experiment's baseline.
            directory_kwargs["conflict_index"] = conflict_index
        if profile:
            # Op-path profiler (core/profiling.py): off by default.
            directory_kwargs["profile"] = True
        if concurrent_rounds is not None:
            # Round-scheduler concurrency: None keeps the directory's
            # own default (1 = the serial queue); N > 1 bounds the
            # in-flight op table, 0 = unbounded independent rounds.
            directory_kwargs["concurrent_rounds"] = concurrent_rounds
        self.directory = directory_cls(
            transport=transport,
            address=directory_address,
            component=component,
            extract_from_object=extract_from_object,
            merge_into_object=merge_into_object,
            static_map=static_map,
            conflict_resolver=conflict_resolver,
            trace=trace,
            coalesce_rounds=coalesce_rounds,
            **directory_kwargs,
        )
        self.cache_managers: Dict[str, CacheManager] = {}

    def add_view(
        self,
        view_id: str,
        view: Any,
        properties: PropertySet,
        extract_from_view: ExtractFromView,
        merge_into_view: MergeIntoView,
        mode: Union[Mode, str] = Mode.WEAK,
        triggers: Optional[TriggerSet] = None,
        trigger_poll_period: float = 100.0,
        request_timeout: Optional[float] = None,
        max_retries: int = 3,
        heartbeat_period: Optional[float] = None,
    ) -> CacheManager:
        """Create (but do not yet start) the cache manager for a view."""
        if view_id in self.cache_managers:
            raise ReproError(f"view id already in system: {view_id}")
        cm_kwargs: Dict[str, Any] = {}
        if self.delta is not None:
            cm_kwargs["delta"] = self.delta
        cm = CacheManager(
            transport=self.transport,
            directory_address=self.directory.address,
            view_id=view_id,
            view=view,
            properties=properties,
            extract_from_view=extract_from_view,
            merge_into_view=merge_into_view,
            mode=mode,
            triggers=triggers,
            trigger_poll_period=trigger_poll_period,
            trace=self.trace,
            request_timeout=request_timeout,
            max_retries=max_retries,
            heartbeat_period=heartbeat_period,
            **cm_kwargs,
        )
        self.cache_managers[view_id] = cm
        return cm

    def close(self) -> None:
        for cm in self.cache_managers.values():
            if not cm._closed:
                cm._shutdown()
        self.directory.close()


# ---------------------------------------------------------------------------
# Cross-backend script execution
# ---------------------------------------------------------------------------
# A *view script* is a generator that yields either a Completion (wait
# for it; its value is sent back into the generator) or ("sleep", dt)
# (advance time by dt).  The same script runs under both backends.

SleepCmd = Tuple[str, float]
ScriptYield = Union[Completion, SleepCmd]
ViewScript = Generator[ScriptYield, Any, Any]


def _sim_backend(transport: Transport) -> Optional[SimTransport]:
    """The SimTransport at the bottom of a (possibly wrapped) stack.

    Wrappers such as :class:`~repro.net.reliability.ReliableTransport`
    expose their wrapped backend as ``.inner``; scripts must run as
    kernel processes whenever a sim kernel is anywhere underneath.
    """
    seen = set()
    t: Any = transport
    while t is not None and id(t) not in seen:
        if isinstance(t, SimTransport):
            return t
        seen.add(id(t))
        t = getattr(t, "inner", None)
    return None


def run_view_script(transport: Transport, script: ViewScript) -> "ScriptHandle":
    """Run a view script appropriately for the transport backend."""
    sim = _sim_backend(transport)
    if sim is not None:
        return _SimScriptHandle(sim, script)
    return _ThreadScriptHandle(transport, script)


class ScriptHandle:
    """Handle to a running view script."""

    def result(self, timeout: Optional[float] = None) -> Any:  # pragma: no cover
        raise NotImplementedError

    @property
    def done(self) -> bool:  # pragma: no cover
        raise NotImplementedError


class _SimScriptHandle(ScriptHandle):
    def __init__(self, transport: SimTransport, script: ViewScript) -> None:
        kernel = transport.kernel

        # Drive `script` manually so its return value is captured and
        # failures of awaited completions are thrown back *into* the
        # script (so application code can catch protocol errors).
        def runner():
            value_to_send: Any = None
            exc_to_throw: Optional[BaseException] = None
            try:
                while True:
                    if exc_to_throw is not None:
                        exc, exc_to_throw = exc_to_throw, None
                        step = script.throw(exc)
                    else:
                        step = script.send(value_to_send)
                    value_to_send = None
                    if isinstance(step, tuple) and step and step[0] == "sleep":
                        yield kernel.timeout(step[1])
                    elif isinstance(step, Completion):
                        try:
                            value_to_send = yield step.sim_event()
                        except BaseException as e:  # forwarded to the script
                            exc_to_throw = e
                    else:
                        raise ReproError(f"script yielded {step!r}")
            except StopIteration as stop:
                return stop.value

        self._process = kernel.spawn(runner())
        self._kernel = kernel

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._process.done:
            self._kernel.run_until_complete(self._process)
        return self._process.result

    @property
    def done(self) -> bool:
        return self._process.done


class _ThreadScriptHandle(ScriptHandle):
    def __init__(self, transport: Transport, script: ViewScript) -> None:
        self._result: Any = None
        self._exc: Optional[BaseException] = None
        self._finished = threading.Event()
        self._time_scale = getattr(transport, "time_scale", 1000.0)

        def run() -> None:
            import time as _time

            value_to_send: Any = None
            exc_to_throw: Optional[BaseException] = None
            try:
                while True:
                    if exc_to_throw is not None:
                        exc, exc_to_throw = exc_to_throw, None
                        step = script.throw(exc)
                    else:
                        step = script.send(value_to_send)
                    value_to_send = None
                    if isinstance(step, tuple) and step and step[0] == "sleep":
                        _time.sleep(step[1] / self._time_scale)
                    elif isinstance(step, Completion):
                        try:
                            value_to_send = step.wait(timeout=30.0)
                        except BaseException as e:  # forwarded to the script
                            exc_to_throw = e
                    else:
                        raise ReproError(f"script yielded {step!r}")
            except StopIteration as stop:
                self._result = stop.value
            except BaseException as exc:  # surfaced via result()
                self._exc = exc
            finally:
                self._finished.set()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._finished.wait(timeout if timeout is not None else 60.0):
            raise ReproError("script did not finish in time")
        if self._exc is not None:
            raise self._exc
        return self._result

    @property
    def done(self) -> bool:
        return self._finished.is_set()


def run_all_scripts(
    transport: Transport,
    scripts: Iterable[ViewScript],
    timeout: Optional[float] = None,
) -> List[Any]:
    """Start all scripts, wait for all, return their results in order."""
    handles = [run_view_script(transport, s) for s in scripts]
    return [h.result(timeout) for h in handles]
