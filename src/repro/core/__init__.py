"""Flecc — the paper's primary contribution.

An application-neutral cache coherence protocol for component views
(Ivan & Karamcheti, IPDPS 2004).  See DESIGN.md for the full map from
paper sections to modules.

Public surface (re-exported here):

- Property algebra: :class:`Interval`, :class:`DiscreteSet`,
  :class:`Property`, :class:`PropertySet`, :func:`dyn_confl`.
- Static sharing map: :class:`StaticSharingMap`.
- Triggers: :func:`parse_trigger`, :class:`Trigger`.
- Images: :class:`ObjectImage`, :class:`VersionVector`.
- Runtime: :class:`DirectoryManager`, :class:`CacheManager`,
  :class:`FleccSystem`, :class:`Mode`.
"""

from repro.core.domains import DiscreteSet, Domain, Interval
from repro.core.property import Property
from repro.core.property_set import PropertySet
from repro.core.static_map import StaticSharingMap
from repro.core.conflicts import ConflictPolicy, dyn_confl
from repro.core.triggers import Trigger, TriggerSet, parse_trigger
from repro.core.image import ObjectImage
from repro.core.versioning import VersionVector
from repro.core.modes import Mode
from repro.core.reflection import ReflectionExtractor, reflect_variables
from repro.core.directory import DirectoryManager
from repro.core.cache_manager import CacheManager
from repro.core.system import FleccSystem
from repro.core.sharding import (
    DomainRangePartitioner,
    HashPartitioner,
    ShardedDirectoryPlane,
    ShardedFleccSystem,
    ShardRouter,
)
from repro.core.rw_semantics import Access, RWCacheManager, RWDirectoryManager
from repro.core.multilevel import ReplicaCoordinator

__all__ = [
    "DiscreteSet",
    "Domain",
    "Interval",
    "Property",
    "PropertySet",
    "StaticSharingMap",
    "ConflictPolicy",
    "dyn_confl",
    "Trigger",
    "TriggerSet",
    "parse_trigger",
    "ObjectImage",
    "VersionVector",
    "Mode",
    "ReflectionExtractor",
    "reflect_variables",
    "DirectoryManager",
    "CacheManager",
    "FleccSystem",
    "HashPartitioner",
    "DomainRangePartitioner",
    "ShardRouter",
    "ShardedDirectoryPlane",
    "ShardedFleccSystem",
    "Access",
    "RWCacheManager",
    "RWDirectoryManager",
    "ReplicaCoordinator",
]
