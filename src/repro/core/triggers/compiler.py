"""Lower trigger ASTs to native Python code objects.

The tree-walking evaluator in :mod:`repro.core.triggers.evaluator` is
the semantic reference, but the cache manager evaluates push/pull/
validity triggers on every poll tick — a hot path.  This module emits a
Python expression mirroring the AST, wraps it in a ``lambda env: ...``,
and compiles it once; evaluation then costs one native function call
instead of a recursive tree walk.

The compiled form preserves the evaluator's semantics exactly:

- logical operators short-circuit and require strict booleans;
- arithmetic/comparison operands must be numbers (``bool`` is not a
  number);
- ``==``/``!=`` refuse to compare a boolean with a number;
- division/modulo by zero, unknown variables, unknown functions, and
  arity errors raise :class:`~repro.errors.TriggerEvalError` *at
  evaluation time*, with the same messages as the interpreter.

Operand evaluation order (left before right, callee checks before
arguments) matches the interpreter, so both backends raise the same
first error on malformed input — the equivalence test suite sweeps this.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.triggers.ast import (
    BinOp,
    BoolLit,
    FuncCall,
    Name,
    Node,
    NumLit,
    UnaryOp,
)
from repro.core.triggers.evaluator import _BUILTINS, _as_bool, _as_number
from repro.errors import TriggerEvalError

Env = Mapping[str, Any]
CompiledTrigger = Callable[[Env], Any]


def _name(env: Env, ident: str) -> Any:
    if ident not in env:
        raise TriggerEvalError(f"unknown variable {ident!r}")
    return env[ident]


def _eq(lv: Any, rv: Any) -> bool:
    if isinstance(lv, bool) != isinstance(rv, bool):
        raise TriggerEvalError("'==' between boolean and number")
    return lv == rv


def _ne(lv: Any, rv: Any) -> bool:
    if isinstance(lv, bool) != isinstance(rv, bool):
        raise TriggerEvalError("'!=' between boolean and number")
    return lv != rv


def _div(lv: float, rv: float) -> float:
    if rv == 0:
        raise TriggerEvalError("division by zero in trigger")
    return lv / rv


def _mod(lv: float, rv: float) -> float:
    if rv == 0:
        raise TriggerEvalError("modulo by zero in trigger")
    return lv % rv


def _fn(name: str, nargs: int) -> Callable[..., float]:
    """Resolve a builtin; checked before arguments are evaluated (the
    callee of a Python call expression evaluates first), matching the
    interpreter's check-then-evaluate order."""
    spec = _BUILTINS.get(name)
    if spec is None:
        raise TriggerEvalError(
            f"unknown function {name!r}; available: "
            f"{', '.join(sorted(_BUILTINS))}"
        )
    lo, hi, fn = spec
    if nargs < lo or (hi is not None and nargs > hi):
        want = f"{lo}" if hi == lo else f">= {lo}"
        raise TriggerEvalError(
            f"{name}() takes {want} argument(s), got {nargs}"
        )
    return fn


# Shared globals for every compiled trigger; no builtins are exposed, so
# a trigger expression can only ever reach these helpers and its env.
_GLOBALS = {
    "__builtins__": {},
    "_n": _as_number,
    "_b": _as_bool,
    "_name": _name,
    "_eq": _eq,
    "_ne": _ne,
    "_div": _div,
    "_mod": _mod,
    "_fn": _fn,
}

_CMP_ARITH = {"<", "<=", ">", ">=", "+", "-", "*"}


def _emit(node: Node) -> str:
    """Emit a Python expression string for ``node``."""
    if isinstance(node, NumLit):
        return repr(node.value)
    if isinstance(node, BoolLit):
        return "True" if node.value else "False"
    if isinstance(node, Name):
        return f"_name(env, {node.ident!r})"
    if isinstance(node, UnaryOp):
        if node.op == "!":
            return f'(not _b({_emit(node.operand)}, "operand of \'!\'"))'
        if node.op == "-":
            return f'(-_n({_emit(node.operand)}, "operand of unary \'-\'"))'
        raise TriggerEvalError(f"unknown unary operator {node.op!r}")
    if isinstance(node, BinOp):
        op, left, right = node.op, _emit(node.left), _emit(node.right)
        if op == "&&":
            return f'(_b({left}, "left of \'&&\'") and _b({right}, "right of \'&&\'"))'
        if op == "||":
            return f'(_b({left}, "left of \'||\'") or _b({right}, "right of \'||\'"))'
        if op == "==":
            return f"_eq({left}, {right})"
        if op == "!=":
            return f"_ne({left}, {right})"
        if op in _CMP_ARITH:
            return (
                f'(_n({left}, "left of {op!r}") {op} '
                f'_n({right}, "right of {op!r}"))'
            )
        if op == "/":
            return f'_div(_n({left}, "left of \'/\'"), _n({right}, "right of \'/\'"))'
        if op == "%":
            return f'_mod(_n({left}, "left of \'%\'"), _n({right}, "right of \'%\'"))'
        raise TriggerEvalError(f"unknown operator {op!r}")
    if isinstance(node, FuncCall):
        args = ", ".join(
            f'_n({_emit(a)}, "argument of {node.name}()")' for a in node.args
        )
        return f"_fn({node.name!r}, {len(node.args)})({args})"
    raise TriggerEvalError(f"unknown AST node {node!r}")


def compile_trigger(node: Node) -> CompiledTrigger:
    """Compile an AST into a callable ``f(env) -> bool | number``.

    The result mirrors :func:`repro.core.triggers.evaluator.evaluate`
    for the same tree under the same environment, including raised
    :class:`TriggerEvalError` messages.
    """
    src = f"lambda env: {_emit(node)}"
    return eval(compile(src, "<trigger>", "eval"), _GLOBALS)
