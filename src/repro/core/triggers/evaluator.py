"""Trigger evaluation against a variable environment.

Semantics:

- Logical operators are short-circuiting and require boolean operands.
- Comparisons and arithmetic require numeric operands (``bool`` is not
  implicitly a number — a trigger like ``t + true`` is a type error).
- Division by zero, unknown variables, and type errors raise
  :class:`~repro.errors.TriggerEvalError` — the cache manager reports
  these back to the application instead of guessing.

The top-level result must be boolean (Eq. 4 maps to {true, false}).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Mapping, Optional, Union

import math

from repro.core.triggers.ast import (
    BinOp,
    BoolLit,
    FuncCall,
    Name,
    Node,
    NumLit,
    UnaryOp,
)
from repro.core.triggers.parser import parse_trigger
from repro.errors import TriggerEvalError

Number = Union[int, float]
Env = Mapping[str, Any]


def _as_number(value: Any, ctx: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TriggerEvalError(f"{ctx}: expected a number, got {value!r}")
    return value


def _as_bool(value: Any, ctx: str) -> bool:
    if not isinstance(value, bool):
        raise TriggerEvalError(f"{ctx}: expected a boolean, got {value!r}")
    return value


def evaluate(node: Node, env: Env) -> Any:
    """Evaluate an AST node under ``env``; may return bool or number."""
    if isinstance(node, NumLit):
        return node.value
    if isinstance(node, BoolLit):
        return node.value
    if isinstance(node, Name):
        if node.ident not in env:
            raise TriggerEvalError(f"unknown variable {node.ident!r}")
        return env[node.ident]
    if isinstance(node, UnaryOp):
        if node.op == "!":
            return not _as_bool(evaluate(node.operand, env), "operand of '!'")
        if node.op == "-":
            return -_as_number(evaluate(node.operand, env), "operand of unary '-'")
        raise TriggerEvalError(f"unknown unary operator {node.op!r}")
    if isinstance(node, BinOp):
        return _eval_binop(node, env)
    if isinstance(node, FuncCall):
        return _eval_call(node, env)
    raise TriggerEvalError(f"unknown AST node {node!r}")


# Whitelisted numeric builtins: (min_arity, max_arity, implementation).
_BUILTINS = {
    "abs": (1, 1, lambda a: abs(a)),
    "floor": (1, 1, lambda a: float(math.floor(a))),
    "ceil": (1, 1, lambda a: float(math.ceil(a))),
    "min": (2, None, min),
    "max": (2, None, max),
}


def _eval_call(node: FuncCall, env: Env) -> float:
    spec = _BUILTINS.get(node.name)
    if spec is None:
        raise TriggerEvalError(
            f"unknown function {node.name!r}; available: "
            f"{', '.join(sorted(_BUILTINS))}"
        )
    lo, hi, fn = spec
    if len(node.args) < lo or (hi is not None and len(node.args) > hi):
        want = f"{lo}" if hi == lo else f">= {lo}"
        raise TriggerEvalError(
            f"{node.name}() takes {want} argument(s), got {len(node.args)}"
        )
    values = [
        _as_number(evaluate(a, env), f"argument of {node.name}()")
        for a in node.args
    ]
    return fn(*values)


def _eval_binop(node: BinOp, env: Env) -> Any:
    op = node.op
    if op == "&&":
        left = _as_bool(evaluate(node.left, env), "left of '&&'")
        return left and _as_bool(evaluate(node.right, env), "right of '&&'")
    if op == "||":
        left = _as_bool(evaluate(node.left, env), "left of '||'")
        return left or _as_bool(evaluate(node.right, env), "right of '||'")
    if op in ("==", "!="):
        lv, rv = evaluate(node.left, env), evaluate(node.right, env)
        if isinstance(lv, bool) != isinstance(rv, bool):
            raise TriggerEvalError(f"'{op}' between boolean and number")
        return (lv == rv) if op == "==" else (lv != rv)
    lv = _as_number(evaluate(node.left, env), f"left of '{op}'")
    rv = _as_number(evaluate(node.right, env), f"right of '{op}'")
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    if op == ">=":
        return lv >= rv
    if op == "+":
        return lv + rv
    if op == "-":
        return lv - rv
    if op == "*":
        return lv * rv
    if op == "/":
        if rv == 0:
            raise TriggerEvalError("division by zero in trigger")
        return lv / rv
    if op == "%":
        if rv == 0:
            raise TriggerEvalError("modulo by zero in trigger")
        return lv % rv
    raise TriggerEvalError(f"unknown operator {op!r}")


class Trigger:
    """A compiled trigger: parse once, evaluate many times.

    ``evaluate(env)`` returns a strict boolean.  The paper binds ``t`` to
    discrete time and the remaining names to view variables; this class
    is agnostic — the cache manager assembles the environment.

    Construction parses the source into an AST *and* lowers the AST to a
    native Python code object (:mod:`repro.core.triggers.compiler`);
    ``evaluate`` runs the compiled form, ``evaluate_interpreted`` walks
    the tree — the two are semantically identical and the equivalence is
    property-tested.
    """

    def __init__(self, source: str) -> None:
        self.source = source
        self.ast: Node = parse_trigger(source)
        # Local import: the compiler imports this module's helpers.
        from repro.core.triggers.compiler import compile_trigger

        self._compiled = compile_trigger(self.ast)
        self._variables = self.ast.variables()

    @property
    def variables(self) -> FrozenSet[str]:
        return self._variables

    @property
    def view_variables(self) -> FrozenSet[str]:
        """Variables other than the reserved time variable ``t``."""
        return self._variables - {"t"}

    def _check_boolean(self, result: Any) -> bool:
        if not isinstance(result, bool):
            raise TriggerEvalError(
                f"trigger {self.source!r} evaluated to non-boolean {result!r}"
            )
        return result

    def evaluate(self, env: Env) -> bool:
        """Evaluate via the compiled fast path (the hot-tick backend)."""
        return self._check_boolean(self._compiled(env))

    def evaluate_interpreted(self, env: Env) -> bool:
        """Evaluate via the tree-walking reference interpreter."""
        return self._check_boolean(evaluate(self.ast, env))

    def unparse(self) -> str:
        return self.ast.unparse()

    def __repr__(self) -> str:
        return f"Trigger({self.source!r})"


class TriggerSet:
    """The three per-view triggers from paper §4.1 (all optional)."""

    def __init__(
        self,
        push: Optional[str] = None,
        pull: Optional[str] = None,
        validity: Optional[str] = None,
    ) -> None:
        self.push = Trigger(push) if push else None
        self.pull = Trigger(pull) if pull else None
        self.validity = Trigger(validity) if validity else None
        names: FrozenSet[str] = frozenset()
        for trig in (self.push, self.pull, self.validity):
            if trig is not None:
                names |= trig.view_variables
        self._view_variables = names

    def to_jsonable(self) -> Dict[str, Optional[str]]:
        return {
            "push": self.push.source if self.push else None,
            "pull": self.pull.source if self.pull else None,
            "validity": self.validity.source if self.validity else None,
        }

    @classmethod
    def from_jsonable(cls, d: Mapping[str, Optional[str]]) -> "TriggerSet":
        return cls(push=d.get("push"), pull=d.get("pull"), validity=d.get("validity"))

    def view_variables(self) -> FrozenSet[str]:
        """Union of view variables across the three triggers (computed
        once at construction; triggers are replaced wholesale via
        ``CacheManager.set_triggers``, never mutated in place)."""
        return self._view_variables

    def __repr__(self) -> str:
        return f"TriggerSet({self.to_jsonable()!r})"
