"""Tokenizer for the quality-trigger expression language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import TriggerSyntaxError

# Longest-match-first operator table.
_OPERATORS = [
    "&&", "||", "<=", ">=", "==", "!=",
    "<", ">", "!", "+", "-", "*", "/", "%", "(", ")", ",",
]

_KEYWORDS = {"true", "false", "and", "or", "not"}


@dataclass(frozen=True)
class Token:
    """A lexical token: kind is 'num', 'name', 'kw', 'op', or 'end'."""

    kind: str
    text: str
    pos: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}@{self.pos})"


def tokenize(source: str) -> List[Token]:
    """Split a trigger expression into tokens; raises on illegal input."""
    if not isinstance(source, str):
        raise TriggerSyntaxError(f"trigger must be a string, got {type(source).__name__}")
    tokens: List[Token] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            num, i = _read_number(source, i)
            tokens.append(Token("num", num, i - len(num)))
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "._"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in _KEYWORDS else "name"
            tokens.append(Token(kind, word, i))
            i = j
            continue
        op = _match_operator(source, i)
        if op is not None:
            tokens.append(Token("op", op, i))
            i += len(op)
            continue
        raise TriggerSyntaxError(f"illegal character {ch!r} at position {i} in {source!r}")
    tokens.append(Token("end", "", n))
    return tokens


def _read_number(source: str, i: int) -> Tuple[str, int]:
    j = i
    seen_dot = False
    while j < len(source) and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
        if source[j] == ".":
            seen_dot = True
        j += 1
    text = source[i:j]
    if text.endswith("."):
        raise TriggerSyntaxError(f"malformed number {text!r} at position {i}")
    return text, j


def _match_operator(source: str, i: int) -> Optional[str]:
    for op in _OPERATORS:
        if source.startswith(op, i):
            return op
    return None
