"""Recursive-descent parser for trigger expressions.

Grammar (see DESIGN.md §5)::

    expr  := or
    or    := and  (('||' | 'or')  and)*
    and   := not  (('&&' | 'and') not)*
    not   := ('!' | 'not') not | cmp
    cmp   := sum  (('<'|'<='|'>'|'>='|'=='|'!=') sum)?
    sum   := prod (('+'|'-') prod)*
    prod  := unary (('*'|'/'|'%') unary)*
    unary := '-' unary | atom
    atom  := NUMBER | NAME | 'true' | 'false' | '(' expr ')'

Comparison is non-associative (``a < b < c`` is a syntax error), which
keeps the semantics unsurprising for trigger authors.
"""

from __future__ import annotations

from typing import List

from repro.core.triggers.ast import (
    BinOp,
    BoolLit,
    FuncCall,
    Name,
    Node,
    NumLit,
    UnaryOp,
)
from repro.core.triggers.lexer import Token, tokenize
from repro.errors import TriggerSyntaxError

_CMP_OPS = {"<", "<=", ">", ">=", "==", "!="}


class _Parser:
    def __init__(self, tokens: List[Token], source: str) -> None:
        self.tokens = tokens
        self.source = source
        self.i = 0

    # -- token helpers --------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.i]

    def advance(self) -> Token:
        tok = self.cur
        self.i += 1
        return tok

    def accept(self, kind: str, *texts: str) -> Token | None:
        if self.cur.kind == kind and (not texts or self.cur.text in texts):
            return self.advance()
        return None

    def expect(self, kind: str, *texts: str) -> Token:
        tok = self.accept(kind, *texts)
        if tok is None:
            want = "/".join(texts) if texts else kind
            raise TriggerSyntaxError(
                f"expected {want} at position {self.cur.pos} in {self.source!r}, "
                f"found {self.cur.text!r}"
            )
        return tok

    # -- grammar -----------------------------------------------------------
    def parse(self) -> Node:
        node = self.expr()
        if self.cur.kind != "end":
            raise TriggerSyntaxError(
                f"unexpected {self.cur.text!r} at position {self.cur.pos} "
                f"in {self.source!r}"
            )
        return node

    def expr(self) -> Node:
        return self.or_()

    def or_(self) -> Node:
        node = self.and_()
        while self.accept("op", "||") or self.accept("kw", "or"):
            node = BinOp("||", node, self.and_())
        return node

    def and_(self) -> Node:
        node = self.not_()
        while self.accept("op", "&&") or self.accept("kw", "and"):
            node = BinOp("&&", node, self.not_())
        return node

    def not_(self) -> Node:
        if self.accept("op", "!") or self.accept("kw", "not"):
            return UnaryOp("!", self.not_())
        return self.cmp()

    def cmp(self) -> Node:
        node = self.sum()
        if self.cur.kind == "op" and self.cur.text in _CMP_OPS:
            op = self.advance().text
            node = BinOp(op, node, self.sum())
            if self.cur.kind == "op" and self.cur.text in _CMP_OPS:
                raise TriggerSyntaxError(
                    f"chained comparison at position {self.cur.pos} "
                    f"in {self.source!r}; parenthesize instead"
                )
        return node

    def sum(self) -> Node:
        node = self.prod()
        while True:
            tok = self.accept("op", "+", "-")
            if tok is None:
                return node
            node = BinOp(tok.text, node, self.prod())

    def prod(self) -> Node:
        node = self.unary()
        while True:
            tok = self.accept("op", "*", "/", "%")
            if tok is None:
                return node
            node = BinOp(tok.text, node, self.unary())

    def unary(self) -> Node:
        if self.accept("op", "-"):
            return UnaryOp("-", self.unary())
        return self.atom()

    def atom(self) -> Node:
        tok = self.cur
        if tok.kind == "num":
            self.advance()
            return NumLit(float(tok.text))
        if tok.kind == "kw" and tok.text in ("true", "false"):
            self.advance()
            return BoolLit(tok.text == "true")
        if tok.kind == "name":
            self.advance()
            if self.cur.kind == "op" and self.cur.text == "(":
                return self.call(tok.text)
            return Name(tok.text)
        if self.accept("op", "("):
            node = self.expr()
            self.expect("op", ")")
            return node
        raise TriggerSyntaxError(
            f"expected a value at position {tok.pos} in {self.source!r}, "
            f"found {tok.text!r}"
        )

    def call(self, name: str) -> Node:
        """``name '(' expr (',' expr)* ')'`` — numeric builtin calls."""
        self.expect("op", "(")
        args = [self.expr()]
        while self.cur.kind == "op" and self.cur.text == ",":
            self.advance()
            args.append(self.expr())
        self.expect("op", ")")
        return FuncCall(name, tuple(args))


def parse_trigger(source: str) -> Node:
    """Parse a trigger expression into an AST (raises TriggerSyntaxError)."""
    tokens = tokenize(source)
    if tokens[0].kind == "end":
        raise TriggerSyntaxError("empty trigger expression")
    return _Parser(tokens, source).parse()
