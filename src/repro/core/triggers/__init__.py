"""Quality-trigger language (paper §4.1, Eq. 4).

A trigger ``T_v(t, x1, x2, ...)`` is a boolean expression over discrete
time ``t`` and view variables, e.g. ``"(t > 1500)"`` from the paper's
Fig 3, or ``"t % 200 == 0 && pending < 5"``.  Triggers are parsed once
into an AST and evaluated safely (no ``eval``) against an environment
supplied by the cache manager — ``t`` from the transport clock,
variables via reflection on the view object.

Three trigger roles (paper §4.1):

- **push**: when true, the cache manager pushes the view's data to the
  directory manager.
- **pull**: when true, the cache manager refreshes from the directory.
- **validity**: evaluated when the view pulls — decides whether the
  directory's copy is "good enough" or fresher state must first be
  fetched from other active views.
"""

from repro.core.triggers.ast import (
    BinOp,
    BoolLit,
    Name,
    Node,
    NumLit,
    UnaryOp,
)
from repro.core.triggers.lexer import Token, tokenize
from repro.core.triggers.parser import parse_trigger
from repro.core.triggers.evaluator import Trigger, TriggerSet

__all__ = [
    "BinOp",
    "BoolLit",
    "Name",
    "Node",
    "NumLit",
    "UnaryOp",
    "Token",
    "tokenize",
    "parse_trigger",
    "Trigger",
    "TriggerSet",
]
