"""AST nodes for trigger expressions.

Nodes support structural equality (for parser tests), ``unparse`` back
to canonical source (round-trip property tests), and ``variables()``
for the cache manager to know which view attributes to reflect.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, Union

Value = Union[bool, int, float]


class Node(abc.ABC):
    """Base AST node."""

    @abc.abstractmethod
    def unparse(self) -> str:
        """Canonical (fully parenthesized) source form."""

    @abc.abstractmethod
    def variables(self) -> FrozenSet[str]:
        """Free variable names referenced by the subtree."""


@dataclass(frozen=True)
class NumLit(Node):
    value: float

    def unparse(self) -> str:
        # Integral floats print as ints so round-tripping is stable.
        v = self.value
        if isinstance(v, float) and v.is_integer():
            return str(int(v))
        return repr(v)

    def variables(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True)
class BoolLit(Node):
    value: bool

    def unparse(self) -> str:
        return "true" if self.value else "false"

    def variables(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True)
class Name(Node):
    ident: str

    def unparse(self) -> str:
        return self.ident

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.ident})


@dataclass(frozen=True)
class UnaryOp(Node):
    op: str  # '!' or '-'
    operand: Node

    def unparse(self) -> str:
        return f"({self.op}{self.operand.unparse()})"

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()


@dataclass(frozen=True)
class FuncCall(Node):
    """A call to one of the whitelisted numeric builtins."""

    name: str
    args: tuple  # of Node

    def unparse(self) -> str:
        inner = ", ".join(a.unparse() for a in self.args)
        return f"{self.name}({inner})"

    def variables(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for a in self.args:
            out |= a.variables()
        return out


@dataclass(frozen=True)
class BinOp(Node):
    op: str  # '&&' '||' '<' '<=' '>' '>=' '==' '!=' '+' '-' '*' '/' '%'
    left: Node
    right: Node

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()
