"""The time-sharing baseline protocol.

Paper §5.2: "The time-sharing protocol allows travel agents to execute
one after another.  In this way, the number of control messages between
the directory manager and the cache managers is kept to a minimum."

Implementation: the standard Flecc engine under a *serial schedule* —
each agent's whole lifecycle runs to completion before the next starts.
With never more than one active view, pulls never trigger fetch rounds
and strong-mode invalidations never fire, so the per-agent message cost
is the flat protocol floor (register/init/push/kill).
"""

from __future__ import annotations

from typing import Any, Iterable, List

from repro.core.system import ViewScript, run_view_script
from repro.net.transport import Transport


class TimeSharingRunner:
    """Runs view scripts strictly one after another."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport

    def run_serial(self, scripts: Iterable[ViewScript], timeout: float | None = None) -> List[Any]:
        """Execute each script to completion before starting the next."""
        results: List[Any] = []
        for script in scripts:
            handle = run_view_script(self.transport, script)
            results.append(handle.result(timeout))
        return results
