"""The multicast (application-oblivious) baseline protocol.

Paper §5.2: "The multicast-based protocol does not discriminate between
cache managers and asks all of them to send updates.  Thus, the number
of messages between the directory manager and the cache manager
reflects the maximum one might see in an application-oblivious
protocol."

Implementation: a directory that (a) treats *every* registered view as
conflicting with every other — property information is ignored — and
(b) always performs the fetch round on pulls (it cannot know whether
the data is fresh without asking everyone).
"""

from __future__ import annotations

from typing import List

from repro.core.directory import DirectoryManager, _PendingOp


class MulticastDirectory(DirectoryManager):
    """Directory that asks all cache managers, ignoring data properties."""

    def conflict_set_of(self, view_id: str) -> List[str]:
        """Everyone (except the requester) conflicts — worst case."""
        return sorted(v for v in self.views if v != view_id)

    def _h_pull(self, msg) -> None:
        rec = self._record_for(msg)
        # Freshness cannot be assumed without application knowledge:
        # every pull collects updates from every registered view.
        self._enqueue(_PendingOp("pull", msg, rec.view_id, need_fresh=True))

    def _h_init(self, msg) -> None:
        rec = self._record_for(msg)
        self._enqueue(_PendingOp("init", msg, rec.view_id, need_fresh=True))
