"""Shared construction for the three compared protocols.

:func:`make_system` builds a :class:`~repro.core.system.FleccSystem`
whose directory implements the requested protocol, so experiment code
can sweep ``for protocol in ProtocolName: ...`` with no other changes.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Optional

from repro.baselines.multicast import MulticastDirectory
from repro.core.directory import (
    DirectoryManager,
    ExtractCells,
    ExtractFromObject,
    MergeIntoObject,
)
from repro.core.messages import TraceLog
from repro.core.static_map import StaticSharingMap
from repro.core.system import FleccSystem
from repro.errors import ReproError
from repro.net.transport import Transport


class ProtocolName(str, Enum):
    """The three protocols compared in the paper's Fig 4."""

    FLECC = "flecc"
    TIME_SHARING = "time-sharing"
    MULTICAST = "multicast"


_DIRECTORY_CLASSES = {
    ProtocolName.FLECC: DirectoryManager,
    # Time-sharing uses the plain directory; the difference is the
    # serial schedule applied by TimeSharingRunner.
    ProtocolName.TIME_SHARING: DirectoryManager,
    ProtocolName.MULTICAST: MulticastDirectory,
}


def make_system(
    protocol: ProtocolName | str,
    transport: Transport,
    component: Any,
    extract_from_object: ExtractFromObject,
    merge_into_object: MergeIntoObject,
    directory_address: str = "dir",
    static_map: Optional[StaticSharingMap] = None,
    conflict_resolver: Optional[Callable[[str, Any, Any], Any]] = None,
    trace: Optional[TraceLog] = None,
    delta: Optional[bool] = None,
    extract_cells: Optional[ExtractCells] = None,
    durability: Any = None,
) -> FleccSystem:
    """Build a FleccSystem running the requested protocol's directory."""
    protocol = ProtocolName(protocol)
    if durability is not None and _DIRECTORY_CLASSES[protocol] is not DirectoryManager:
        # Baseline directory classes predate the durable plane and do
        # not accept the kwarg; failing here beats a TypeError deep in
        # the constructor.
        raise ReproError(
            f"durability is not supported by the {protocol.value} directory"
        )
    return FleccSystem(
        transport,
        component,
        extract_from_object,
        merge_into_object,
        directory_address=directory_address,
        static_map=static_map,
        conflict_resolver=conflict_resolver,
        trace=trace,
        directory_cls=_DIRECTORY_CLASSES[protocol],
        delta=delta,
        extract_cells=extract_cells,
        durability=durability,
    )
