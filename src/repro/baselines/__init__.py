"""Baseline coherence protocols from the paper's efficiency evaluation (§5.2).

Two comparators frame Flecc's Fig 4 message counts:

- **Time-sharing** (:mod:`repro.baselines.time_sharing`): travel agents
  "execute one after another", keeping control messages minimal — the
  floor.
- **Multicast** (:mod:`repro.baselines.multicast`): the directory "does
  not discriminate between cache managers and asks all of them to send
  updates" — the application-oblivious ceiling.

Both reuse the Flecc engine so all three protocols run the *identical*
workload and are counted identically: multicast differs only in its
conflict answer (everyone conflicts, always fetch), time-sharing only in
its schedule (serial execution).
"""

from repro.baselines.common import ProtocolName, make_system
from repro.baselines.multicast import MulticastDirectory
from repro.baselines.time_sharing import TimeSharingRunner

__all__ = [
    "ProtocolName",
    "make_system",
    "MulticastDirectory",
    "TimeSharingRunner",
]
